// load_runner: capacity sweeps and the adaptation-under-load scenario.
//
//   load_runner                                   # default PBR sweep
//   load_runner --ftm LFR --delta off --steps 10 --out curve.jsonl
//   load_runner --bandwidth 1e6 --cpu-speed 0.5   # move the knee, watch it
//   load_runner --scenario adapt --trace-out t.json --metrics-out m.jsonl
//
// Sweep mode ramps offered load and emits one JSON line per measured point
// (stdout, plus --out FILE); the trailing line reports the detected knee.
// Scenario mode runs the closed monitoring->adaptation loop under fleet
// traffic and exits non-zero if any invariant is violated. Both modes are
// bit-deterministic in --seed: the same command line yields byte-identical
// output, which CI exploits with a cmp gate.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "rcs/common/logging.hpp"
#include "rcs/load/scenario.hpp"
#include "rcs/load/sweep.hpp"

namespace {

/// Wall-clock throughput accounting, printed to stderr so stdout stays
/// byte-identical for the determinism cmp gates.
struct RunSummary {
  std::uint64_t events{0};
  std::size_t peak_queue_depth{0};
  rcs::sim::EventLoop::WheelStats wheel{};
  rcs::sim::Simulation::ParallelStats parallel{};
  std::chrono::steady_clock::time_point start{std::chrono::steady_clock::now()};

  void print() const {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double rate =
        seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
    std::fprintf(stderr,
                 "summary: %llu events processed, %.0f events/sec, "
                 "peak queue depth %zu, wall %.2fs\n",
                 static_cast<unsigned long long>(events), rate,
                 peak_queue_depth, seconds);
    std::fprintf(stderr,
                 "wheel: %llu cascaded, %llu bucket sorts, "
                 "%llu overflow migrations, overflow peak %zu\n",
                 static_cast<unsigned long long>(wheel.cascaded_entries),
                 static_cast<unsigned long long>(wheel.bucket_sorts),
                 static_cast<unsigned long long>(wheel.overflow_migrated),
                 wheel.overflow_peak);
    if (parallel.windows != 0) {
      std::fprintf(
          stderr,
          "parallel: %llu windows (%llu widened, %llu idle jumps), "
          "%llu merged deliveries, critical-path speedup %.3f\n",
          static_cast<unsigned long long>(parallel.windows),
          static_cast<unsigned long long>(parallel.widened_windows),
          static_cast<unsigned long long>(parallel.idle_jumps),
          static_cast<unsigned long long>(parallel.merged_deliveries),
          parallel.critical_path_speedup());
    }
  }
};

struct Args {
  std::string scenario;  // empty: sweep mode
  std::uint64_t seed{1};
  std::string ftm{"PBR"};
  std::string delta{"on"};
  std::string arrival{"open"};
  std::size_t clients{40};
  double rps_from{20.0};
  double rps_to{240.0};
  double rps{150.0};  // scenario offered load
  int steps{8};
  double warmup_s{2.0};
  double window_s{6.0};
  double bandwidth_bps{12'500'000.0};
  double cpu_speed{1.0};
  std::string out;
  std::string trace_out;
  std::string metrics_out;
  /// Simulation worker threads (0 = serial); output is byte-identical.
  int threads{0};
  bool verbose{false};
};

void usage() {
  std::puts(
      "usage: load_runner [--seed S] [--ftm NAME] [--delta on|off]\n"
      "                   [--arrival open|closed|bursty] [--clients N]\n"
      "                   [--rps-from R] [--rps-to R] [--steps N]\n"
      "                   [--warmup SEC] [--window SEC] [--bandwidth BPS]\n"
      "                   [--cpu-speed X] [--threads N] [--out FILE]\n"
      "                   [--verbose]\n"
      "       load_runner --scenario adapt [--seed S] [--clients N]\n"
      "                   [--rps R] [--bandwidth BPS] [--threads N]\n"
      "                   [--trace-out FILE] [--metrics-out FILE]");
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    const auto next_num = [&](double& slot) {
      const char* v = next();
      if (!v) return false;
      slot = std::atof(v);
      return true;
    };
    if (arg == "--scenario") {
      const char* v = next();
      if (!v) return false;
      args.scenario = v;
    } else if (arg == "--seed") {
      const char* v = next();
      if (!v) return false;
      args.seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--ftm") {
      const char* v = next();
      if (!v) return false;
      args.ftm = v;
    } else if (arg == "--delta") {
      const char* v = next();
      if (!v) return false;
      args.delta = v;
    } else if (arg == "--arrival") {
      const char* v = next();
      if (!v) return false;
      args.arrival = v;
    } else if (arg == "--clients") {
      const char* v = next();
      if (!v) return false;
      args.clients = static_cast<std::size_t>(std::atoi(v));
    } else if (arg == "--steps") {
      const char* v = next();
      if (!v) return false;
      args.steps = std::atoi(v);
    } else if (arg == "--rps-from") {
      if (!next_num(args.rps_from)) return false;
    } else if (arg == "--rps-to") {
      if (!next_num(args.rps_to)) return false;
    } else if (arg == "--rps") {
      if (!next_num(args.rps)) return false;
    } else if (arg == "--warmup") {
      if (!next_num(args.warmup_s)) return false;
    } else if (arg == "--window") {
      if (!next_num(args.window_s)) return false;
    } else if (arg == "--bandwidth") {
      if (!next_num(args.bandwidth_bps)) return false;
    } else if (arg == "--cpu-speed") {
      if (!next_num(args.cpu_speed)) return false;
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      args.threads = std::atoi(v);
      if (args.threads < 0) {
        std::fprintf(stderr, "bad --threads value: %s\n", v);
        return false;
      }
    } else if (arg == "--out") {
      const char* v = next();
      if (!v) return false;
      args.out = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      args.trace_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      args.metrics_out = v;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

bool dump_to(const std::string& path, const std::string& data,
             const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for %s\n", path.c_str(), what);
    return false;
  }
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  return ok;
}

int run_sweep_mode(const Args& args, RunSummary& summary) {
  rcs::load::SweepOptions options;
  options.seed = args.seed;
  options.ftm = args.ftm;
  options.delta_checkpoint = args.delta != "off";
  options.arrival = args.arrival;
  options.clients = args.clients;
  options.rps_from = args.rps_from;
  options.rps_to = args.rps_to;
  options.steps = args.steps;
  options.warmup =
      static_cast<rcs::sim::Duration>(args.warmup_s * rcs::sim::kSecond);
  options.window =
      static_cast<rcs::sim::Duration>(args.window_s * rcs::sim::kSecond);
  options.replica_bandwidth_bps = args.bandwidth_bps;
  options.cpu_speed = args.cpu_speed;
  options.threads = args.threads;

  std::fprintf(stderr,
               "sweep: %s/%s %zu client(s) %s arrivals, %.0f..%.0f rps in %d "
               "step(s), bw=%.0f Bps cpu=%.2fx\n",
               options.ftm.c_str(), options.delta_checkpoint ? "delta" : "full",
               options.clients, options.arrival.c_str(), options.rps_from,
               options.rps_to, options.steps, options.replica_bandwidth_bps,
               options.cpu_speed);
  const auto result = rcs::load::run_sweep(options);
  summary.events += result.events;
  summary.peak_queue_depth =
      std::max(summary.peak_queue_depth, result.peak_queue_depth);
  summary.wheel = result.wheel;
  summary.parallel = result.parallel;
  const std::string json = result.to_json_lines();
  std::fputs(json.c_str(), stdout);
  if (!args.out.empty() && !dump_to(args.out, json, "sweep curve")) return 2;
  if (result.knee_index >= 0) {
    std::fprintf(stderr, "knee at step %d (offered %.1f rps)\n",
                 result.knee_index, result.knee_offered_rps());
  } else {
    std::fprintf(stderr, "no knee found in the ramp\n");
  }
  return 0;
}

int run_scenario_mode(const Args& args, RunSummary& summary) {
  if (args.scenario != "adapt") {
    std::fprintf(stderr, "unknown scenario: %s\n", args.scenario.c_str());
    return 2;
  }
  rcs::load::AdaptScenarioOptions options;
  options.seed = args.seed;
  options.clients = args.clients == 40 ? 30 : args.clients;  // scenario default
  options.offered_rps = args.rps;
  if (args.bandwidth_bps != 12'500'000.0) {
    options.replica_bandwidth_bps = args.bandwidth_bps;
  }
  options.record_trace = !args.trace_out.empty() || !args.metrics_out.empty();
  options.threads = args.threads;
  const auto result = rcs::load::run_adapt_scenario(options);
  summary.events += result.events;
  summary.peak_queue_depth =
      std::max(summary.peak_queue_depth, result.peak_queue_depth);
  summary.wheel = result.wheel;
  summary.parallel = result.parallel;
  std::fputs(result.trace.c_str(), stdout);
  if (!args.trace_out.empty() &&
      !dump_to(args.trace_out, result.trace_json, "trace")) {
    return 2;
  }
  if (!args.metrics_out.empty() &&
      !dump_to(args.metrics_out, result.metrics_json, "metrics")) {
    return 2;
  }
  return result.passed ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }
  rcs::log().set_level(args.verbose ? rcs::LogLevel::kInfo
                                    : rcs::LogLevel::kWarn);
  if (args.verbose) rcs::log().set_stderr_level(rcs::LogLevel::kInfo);
  RunSummary summary;
  const int rc = args.scenario.empty() ? run_sweep_mode(args, summary)
                                       : run_scenario_mode(args, summary);
  summary.print();
  return rc;
}
