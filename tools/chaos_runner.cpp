// chaos_runner: seeded chaos campaign sweeps with replay and shrinking.
//
// Default run sweeps N seeds across {PBR, LFR, TR} x {delta checkpointing
// on, off}, plus a set of mid-campaign differential transition seeds, and
// checks every history invariant on every run. On the first failure it
// prints the seed, the configuration, the greedily shrunk minimal fault
// timeline, and the exact command line that replays it — then exits
// non-zero.
//
//   chaos_runner                          # full default sweep (50+20 seeds)
//   chaos_runner --seeds 5                # bounded smoke sweep
//   chaos_runner --replay 17 --ftm LFR --delta off
//   chaos_runner --replay 3 --ftm PBR --delta on --transition-to LFR
//   chaos_runner --demo-shrink            # broken oracle -> shrunk timeline
//
// Every campaign is bit-deterministic in its seed: replaying a reported
// failure reproduces the identical trace, and the shrunk schedule is
// re-validated by replay before it is printed.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "rcs/common/logging.hpp"
#include "rcs/core/chaos_campaign.hpp"

namespace {

using rcs::core::ChaosCampaignOptions;
using rcs::core::ChaosCampaignResult;

/// Wall-clock throughput accounting, printed to stderr so stdout stays
/// byte-identical for the determinism cmp gates.
struct RunSummary {
  std::uint64_t events{0};
  std::size_t peak_queue_depth{0};
  rcs::sim::EventLoop::WheelStats wheel{};
  std::chrono::steady_clock::time_point start{std::chrono::steady_clock::now()};

  void add(const ChaosCampaignResult& result) {
    events += result.events;
    peak_queue_depth = std::max(peak_queue_depth, result.peak_queue_depth);
    wheel.cascaded_entries += result.wheel.cascaded_entries;
    wheel.bucket_sorts += result.wheel.bucket_sorts;
    wheel.overflow_migrated += result.wheel.overflow_migrated;
    wheel.overflow_peak = std::max(wheel.overflow_peak,
                                   result.wheel.overflow_peak);
  }
  void print() const {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double rate =
        seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
    std::fprintf(stderr,
                 "summary: %llu events processed, %.0f events/sec, "
                 "peak queue depth %zu, wall %.2fs\n",
                 static_cast<unsigned long long>(events), rate,
                 peak_queue_depth, seconds);
    std::fprintf(stderr,
                 "wheel: %llu cascaded, %llu bucket sorts, "
                 "%llu overflow migrations, overflow peak %zu\n",
                 static_cast<unsigned long long>(wheel.cascaded_entries),
                 static_cast<unsigned long long>(wheel.bucket_sorts),
                 static_cast<unsigned long long>(wheel.overflow_migrated),
                 wheel.overflow_peak);
  }
};

struct SweepSpec {
  std::string ftm;
  bool delta;
  std::string transition_to;  // empty: plain campaign
};

struct Args {
  int seeds{50};
  int transition_seeds{20};
  int jobs{1};
  std::uint64_t base_seed{1};
  std::vector<std::string> ftms{"PBR", "LFR", "TR"};
  std::string delta{"both"};  // on | off | both
  bool has_replay{false};
  std::uint64_t replay_seed{0};
  std::string replay_ftm{"PBR"};
  std::string transition_to;
  bool demo_shrink{false};
  bool verbose{false};
  std::string trace_out;    // replay only: Chrome trace JSON destination
  std::string metrics_out;  // replay only: metrics JSON-lines destination
};

void usage() {
  std::puts(
      "usage: chaos_runner [--seeds N] [--transitions N] [--base-seed S]\n"
      "                    [--ftm A,B,..] [--delta on|off|both] [--jobs N]\n"
      "                    [--verbose]\n"
      "       chaos_runner --replay SEED --ftm NAME --delta on|off\n"
      "                    [--transition-to NAME] [--trace-out FILE]\n"
      "                    [--metrics-out FILE]\n"
      "       chaos_runner --demo-shrink");
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = next();
      if (!v) return false;
      args.seeds = std::atoi(v);
    } else if (arg == "--transitions") {
      const char* v = next();
      if (!v) return false;
      args.transition_seeds = std::atoi(v);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return false;
      args.jobs = std::atoi(v);
      if (args.jobs < 1) {
        std::fprintf(stderr, "bad --jobs value: %s\n", v);
        return false;
      }
    } else if (arg == "--base-seed") {
      const char* v = next();
      if (!v) return false;
      args.base_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--ftm") {
      const char* v = next();
      if (!v) return false;
      args.ftms = split_csv(v);
      args.replay_ftm = args.ftms.empty() ? "PBR" : args.ftms.front();
    } else if (arg == "--delta") {
      const char* v = next();
      if (!v) return false;
      args.delta = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return false;
      args.has_replay = true;
      args.replay_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--transition-to") {
      const char* v = next();
      if (!v) return false;
      args.transition_to = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      args.trace_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      args.metrics_out = v;
    } else if (arg == "--demo-shrink") {
      args.demo_shrink = true;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::string replay_command(const ChaosCampaignOptions& options) {
  std::string cmd = "chaos_runner --replay " + std::to_string(options.seed) +
                    " --ftm " + options.ftm + " --delta " +
                    (options.delta_checkpoint ? "on" : "off");
  if (!options.transition_to.empty()) {
    cmd += " --transition-to " + options.transition_to;
  }
  return cmd;
}

/// Report a failed campaign: verdict, shrunk timeline, replay command.
void report_failure(const ChaosCampaignOptions& options,
                    const ChaosCampaignResult& result) {
  std::printf("\nFAILURE seed=%llu label=%s\n",
              static_cast<unsigned long long>(result.seed),
              result.label.c_str());
  std::printf("%s", result.report.to_string().c_str());
  std::printf("\nshrinking the fault timeline (%zu episode(s))...\n",
              result.schedule.episode_count());
  const auto shrunk = rcs::core::shrink_schedule(options, result.schedule);
  std::printf("minimal failing timeline (%zu episode(s)):\n%s",
              shrunk.episode_count(), shrunk.to_string().c_str());
  std::printf("replay: %s\n", replay_command(options).c_str());
}

/// Account and print one finished campaign; shared by the serial path and
/// the --jobs merge so both emit byte-identical reports.
int report_one(const ChaosCampaignOptions& options,
               const ChaosCampaignResult& result, bool verbose,
               int& campaigns, int& failures, RunSummary& summary) {
  ++campaigns;
  summary.add(result);
  if (verbose || !result.passed) {
    std::printf("  seed=%-4llu %-18s %s (ctr=%lld retries=%llu)\n",
                static_cast<unsigned long long>(options.seed),
                result.label.c_str(), result.passed ? "PASS" : "FAIL",
                static_cast<long long>(result.final_counter),
                static_cast<unsigned long long>(result.client_stats.retries));
  }
  if (!result.passed) {
    ++failures;
    report_failure(options, result);
    return 1;
  }
  return 0;
}

int run_one(const ChaosCampaignOptions& options, bool verbose,
            int& campaigns, int& failures, RunSummary& summary) {
  const auto result = rcs::core::run_campaign(options);
  return report_one(options, result, verbose, campaigns, failures, summary);
}

int run_sweep(const Args& args, RunSummary& summary) {
  std::vector<bool> delta_modes;
  if (args.delta == "on" || args.delta == "both") delta_modes.push_back(true);
  if (args.delta == "off" || args.delta == "both") delta_modes.push_back(false);
  if (delta_modes.empty()) {
    std::fprintf(stderr, "bad --delta value: %s\n", args.delta.c_str());
    return 2;
  }

  // The full campaign plan, in canonical (seed) order. --jobs executes it
  // out of order but always reports it in this order, so the output is
  // byte-identical to a serial run.
  std::vector<ChaosCampaignOptions> plan;
  for (int s = 0; s < args.seeds; ++s) {
    for (const auto& ftm : args.ftms) {
      for (const bool delta : delta_modes) {
        ChaosCampaignOptions options;
        options.seed = args.base_seed + static_cast<std::uint64_t>(s);
        options.ftm = ftm;
        options.delta_checkpoint = delta;
        plan.push_back(options);
      }
    }
  }

  // Mid-campaign differential transitions, coverage-intersected chaos.
  static const SweepSpec kTransitions[] = {
      {"PBR", true, "LFR"},
      {"LFR", true, "PBR"},
      {"PBR", false, "PBR_TR"},
  };
  const std::size_t transition_start = plan.size();
  for (int s = 0; s < args.transition_seeds; ++s) {
    const auto& spec = kTransitions[static_cast<std::size_t>(s) %
                                    std::size(kTransitions)];
    ChaosCampaignOptions options;
    options.seed = args.base_seed + 1000 + static_cast<std::uint64_t>(s);
    options.ftm = spec.ftm;
    options.delta_checkpoint = spec.delta;
    options.transition_to = spec.transition_to;
    plan.push_back(options);
  }

  int campaigns = 0;
  int failures = 0;
  const auto print_transition_header = [&] {
    if (args.transition_seeds > 0) {
      std::printf("transition sweep: %d seed(s) x %zu transition(s)\n",
                  args.transition_seeds, std::size(kTransitions));
    }
  };

  std::printf("chaos sweep: %d seed(s) x {", args.seeds);
  for (std::size_t i = 0; i < args.ftms.size(); ++i) {
    std::printf("%s%s", i ? "," : "", args.ftms[i].c_str());
  }
  std::printf("} x {%s}\n", args.delta.c_str());

  if (args.jobs <= 1) {
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (i == transition_start) print_transition_header();
      if (run_one(plan[i], args.verbose, campaigns, failures, summary)) {
        std::printf("\n%d campaign(s), %d failure(s)\n", campaigns,
                    failures);
        return 1;
      }
    }
    if (plan.size() == transition_start) print_transition_header();
    std::printf("\n%d campaign(s), %d failure(s) — all invariants held\n",
                campaigns, failures);
    return 0;
  }

  // Parallel execution: one Simulation per worker thread (campaigns are
  // independent and each owns its whole world), results merged in plan
  // order. A failing serial sweep stops at the first failure; here the
  // later campaigns have already run, but the report still cuts off at the
  // first failure in canonical order, so the two modes print the same
  // bytes either way.
  std::vector<ChaosCampaignResult> results(plan.size());
  std::vector<std::string> errors(plan.size());
  std::atomic<std::size_t> cursor{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1);
      if (i >= plan.size()) return;
      try {
        results[i] = rcs::core::run_campaign(plan[i]);
      } catch (const std::exception& e) {
        errors[i] = e.what();
      }
    }
  };
  std::vector<std::thread> workers;
  const auto worker_count = std::min<std::size_t>(
      static_cast<std::size_t>(args.jobs), std::max<std::size_t>(plan.size(), 1));
  workers.reserve(worker_count);
  for (std::size_t j = 0; j < worker_count; ++j) workers.emplace_back(worker);
  for (auto& thread : workers) thread.join();

  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (i == transition_start) print_transition_header();
    if (!errors[i].empty()) {
      std::fprintf(stderr, "campaign seed=%llu died: %s\n",
                   static_cast<unsigned long long>(plan[i].seed),
                   errors[i].c_str());
      return 2;
    }
    if (report_one(plan[i], results[i], args.verbose, campaigns, failures,
                   summary)) {
      std::printf("\n%d campaign(s), %d failure(s)\n", campaigns, failures);
      return 1;
    }
  }
  if (plan.size() == transition_start) print_transition_header();
  std::printf("\n%d campaign(s), %d failure(s) — all invariants held\n",
              campaigns, failures);
  return 0;
}

bool dump_to(const std::string& path, const std::string& data,
             const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for %s\n", path.c_str(), what);
    return false;
  }
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  return ok;
}

int run_replay(const Args& args, RunSummary& summary) {
  ChaosCampaignOptions options;
  options.seed = args.replay_seed;
  options.ftm = args.replay_ftm;
  options.delta_checkpoint = args.delta != "off";
  options.transition_to = args.transition_to;
  options.record_trace = !args.trace_out.empty() || !args.metrics_out.empty();
  const auto result = rcs::core::run_campaign(options);
  summary.add(result);
  std::printf("%s", result.trace.c_str());
  if (!args.trace_out.empty() &&
      !dump_to(args.trace_out, result.trace_json, "trace")) {
    return 2;
  }
  if (!args.metrics_out.empty() &&
      !dump_to(args.metrics_out, result.metrics_json, "metrics")) {
    return 2;
  }
  if (!result.passed) {
    report_failure(options, result);
    return 1;
  }
  return 0;
}

int run_demo_shrink(const Args& args) {
  // Intentionally broken oracle: any retransmission counts as a violation.
  // Chaos makes retries inevitable, so the campaign fails and the shrinker
  // demonstrably reduces the timeline to (usually) a single episode.
  ChaosCampaignOptions options;
  options.seed = args.base_seed;
  options.ftm = args.ftms.empty() ? "PBR" : args.ftms.front();
  options.forbid_retries = true;
  std::printf("demo: oracle forbids retries; chaos must violate it\n");
  const auto result = rcs::core::run_campaign(options);
  if (result.passed) {
    std::printf("unexpected PASS — no retries under seed %llu; "
                "try another --base-seed\n",
                static_cast<unsigned long long>(options.seed));
    return 1;
  }
  report_failure(options, result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }
  rcs::log().set_level(args.verbose ? rcs::LogLevel::kInfo
                                    : rcs::LogLevel::kWarn);
  if (args.verbose) rcs::log().set_stderr_level(rcs::LogLevel::kInfo);
  if (args.demo_shrink) return run_demo_shrink(args);
  RunSummary summary;
  const int rc = args.has_replay ? run_replay(args, summary)
                                 : run_sweep(args, summary);
  summary.print();
  return rc;
}
