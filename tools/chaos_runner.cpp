// chaos_runner: seeded chaos campaign sweeps with replay and shrinking.
//
// Default run sweeps N seeds across {PBR, LFR, TR} x {delta checkpointing
// on, off}, plus a set of mid-campaign differential transition seeds, and
// checks every history invariant on every run. On the first failure it
// prints the seed, the configuration, the greedily shrunk minimal fault
// timeline, and the exact command line that replays it — then exits
// non-zero.
//
//   chaos_runner                          # full default sweep (50+20 seeds)
//   chaos_runner --seeds 5                # bounded smoke sweep
//   chaos_runner --replay 17 --ftm LFR --delta off
//   chaos_runner --replay 3 --ftm PBR --delta on --transition-to LFR
//   chaos_runner --demo-shrink            # broken oracle -> shrunk timeline
//   chaos_runner --list-points            # fault-simulation point catalogue
//   chaos_runner --fsim 'ckpt.*'          # restrict fsim to matching points
//   chaos_runner --coverage-sweep         # run until fsim coverage is dry
//
// Every campaign is bit-deterministic in its seed: replaying a reported
// failure reproduces the identical trace, and the shrunk schedule is
// re-validated by replay before it is printed.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "rcs/common/logging.hpp"
#include "rcs/core/chaos_campaign.hpp"
#include "rcs/fsim/fsim.hpp"

namespace {

using rcs::core::ChaosCampaignOptions;
using rcs::core::ChaosCampaignResult;
namespace fsim = rcs::fsim;

/// Wall-clock throughput accounting, printed to stderr so stdout stays
/// byte-identical for the determinism cmp gates.
struct RunSummary {
  std::uint64_t events{0};
  std::size_t peak_queue_depth{0};
  rcs::sim::EventLoop::WheelStats wheel{};
  rcs::sim::Simulation::ParallelStats parallel{};
  int max_partitions{1};
  /// Merged fsim coverage of every reported campaign. Merged in plan order
  /// (report_one), and merge() is order-insensitive anyway, so serial and
  /// --jobs sweeps accumulate identical reports.
  fsim::CoverageReport coverage;
  std::chrono::steady_clock::time_point start{std::chrono::steady_clock::now()};

  void add(const ChaosCampaignResult& result) {
    events += result.events;
    coverage.merge(result.fsim);
    peak_queue_depth = std::max(peak_queue_depth, result.peak_queue_depth);
    wheel.cascaded_entries += result.wheel.cascaded_entries;
    wheel.bucket_sorts += result.wheel.bucket_sorts;
    wheel.overflow_migrated += result.wheel.overflow_migrated;
    wheel.overflow_peak = std::max(wheel.overflow_peak,
                                   result.wheel.overflow_peak);
    parallel.windows += result.parallel.windows;
    parallel.widened_windows += result.parallel.widened_windows;
    parallel.idle_jumps += result.parallel.idle_jumps;
    parallel.merged_deliveries += result.parallel.merged_deliveries;
    parallel.parallel_events += result.parallel.parallel_events;
    parallel.makespan_events += result.parallel.makespan_events;
    max_partitions = std::max(max_partitions, result.partitions);
  }
  void print() const {
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const double rate =
        seconds > 0.0 ? static_cast<double>(events) / seconds : 0.0;
    std::fprintf(stderr,
                 "summary: %llu events processed, %.0f events/sec, "
                 "peak queue depth %zu, wall %.2fs\n",
                 static_cast<unsigned long long>(events), rate,
                 peak_queue_depth, seconds);
    std::fprintf(stderr,
                 "wheel: %llu cascaded, %llu bucket sorts, "
                 "%llu overflow migrations, overflow peak %zu\n",
                 static_cast<unsigned long long>(wheel.cascaded_entries),
                 static_cast<unsigned long long>(wheel.bucket_sorts),
                 static_cast<unsigned long long>(wheel.overflow_migrated),
                 wheel.overflow_peak);
    if (parallel.windows != 0) {
      std::fprintf(
          stderr,
          "parallel: %d partition(s), %llu windows (%llu widened, "
          "%llu idle jumps), %llu merged deliveries, "
          "critical-path speedup %.3f\n",
          max_partitions, static_cast<unsigned long long>(parallel.windows),
          static_cast<unsigned long long>(parallel.widened_windows),
          static_cast<unsigned long long>(parallel.idle_jumps),
          static_cast<unsigned long long>(parallel.merged_deliveries),
          parallel.critical_path_speedup());
    }
  }
};

struct SweepSpec {
  std::string ftm;
  bool delta;
  std::string transition_to;  // empty: plain campaign
};

struct Args {
  int seeds{50};
  int transition_seeds{20};
  int jobs{1};
  /// Simulation worker threads per campaign (0 = serial). Orthogonal to
  /// --jobs: jobs parallelizes across campaigns, threads inside one.
  int threads{0};
  /// Topology-partition each campaign (repository vs. replica cluster) so
  /// --threads runs real concurrent windows. Requires --fsim off: the fsim
  /// registry's consult path is shared across partitions.
  bool auto_partition{false};
  /// Adaptive lookahead windows; "off" forces one rendezvous per window.
  /// Counted output is identical either way — CI cmp-gates both settings.
  bool adaptive{true};
  std::uint64_t base_seed{1};
  std::vector<std::string> ftms{"PBR", "LFR", "TR"};
  std::string delta{"both"};  // on | off | both
  bool has_replay{false};
  std::uint64_t replay_seed{0};
  std::string replay_ftm{"PBR"};
  std::string transition_to;
  bool demo_shrink{false};
  bool verbose{false};
  std::string trace_out;    // replay only: Chrome trace JSON destination
  std::string metrics_out;  // replay only: metrics JSON-lines destination
  std::string fsim_glob;    // "": all points; "off": disable; else glob
  std::string coverage_out;  // fsim coverage JSON destination
  bool list_points{false};
  bool coverage_sweep{false};
  bool quick{false};  // coverage sweep: 1 seed per spec per round
};

void usage() {
  std::puts(
      "usage: chaos_runner [--seeds N] [--transitions N] [--base-seed S]\n"
      "                    [--ftm A,B,..] [--delta on|off|both] [--jobs N]\n"
      "                    [--threads N] [--auto-partition]\n"
      "                    [--adaptive on|off] [--fsim GLOB|off]\n"
      "                    [--coverage-out FILE] [--verbose]\n"
      "       chaos_runner --replay SEED --ftm NAME --delta on|off\n"
      "                    [--transition-to NAME] [--trace-out FILE]\n"
      "                    [--metrics-out FILE] [--coverage-out FILE]\n"
      "       chaos_runner --coverage-sweep [--quick] [--base-seed S]\n"
      "                    [--fsim GLOB] [--coverage-out FILE]\n"
      "       chaos_runner --list-points\n"
      "       chaos_runner --demo-shrink");
}

/// Minimal glob: '*' any run, '?' any one char, everything else literal.
bool glob_match(const char* pattern, const char* text) {
  if (*pattern == '\0') return *text == '\0';
  if (*pattern == '*') {
    return glob_match(pattern + 1, text) ||
           (*text != '\0' && glob_match(pattern, text + 1));
  }
  return *text != '\0' && (*pattern == '?' || *pattern == *text) &&
         glob_match(pattern + 1, text + 1);
}

/// Resolve --fsim into the campaign knobs. Returns false (after printing)
/// when a glob matches no point — a silent no-match would report an empty
/// sweep as clean coverage.
bool resolve_fsim(const Args& args, bool& fsim_on, std::vector<int>& points) {
  fsim_on = true;
  points.clear();
  if (args.fsim_glob.empty()) return true;
  if (args.fsim_glob == "off") {
    fsim_on = false;
    return true;
  }
  for (int i = 0; i < fsim::kPointCount; ++i) {
    const auto p = static_cast<fsim::Point>(i);
    if (glob_match(args.fsim_glob.c_str(), fsim::to_string(p))) {
      points.push_back(i);
    }
  }
  if (points.empty()) {
    std::fprintf(stderr, "--fsim '%s' matches no fault-simulation point\n",
                 args.fsim_glob.c_str());
    return false;
  }
  return true;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const auto comma = csv.find(',', start);
    if (comma == std::string::npos) {
      out.push_back(csv.substr(start));
      break;
    }
    out.push_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

bool parse_args(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--seeds") {
      const char* v = next();
      if (!v) return false;
      args.seeds = std::atoi(v);
    } else if (arg == "--transitions") {
      const char* v = next();
      if (!v) return false;
      args.transition_seeds = std::atoi(v);
    } else if (arg == "--jobs") {
      const char* v = next();
      if (!v) return false;
      args.jobs = std::atoi(v);
      if (args.jobs < 1) {
        std::fprintf(stderr, "bad --jobs value: %s\n", v);
        return false;
      }
    } else if (arg == "--threads") {
      const char* v = next();
      if (!v) return false;
      args.threads = std::atoi(v);
      if (args.threads < 0) {
        std::fprintf(stderr, "bad --threads value: %s\n", v);
        return false;
      }
    } else if (arg == "--base-seed") {
      const char* v = next();
      if (!v) return false;
      args.base_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--ftm") {
      const char* v = next();
      if (!v) return false;
      args.ftms = split_csv(v);
      args.replay_ftm = args.ftms.empty() ? "PBR" : args.ftms.front();
    } else if (arg == "--delta") {
      const char* v = next();
      if (!v) return false;
      args.delta = v;
    } else if (arg == "--replay") {
      const char* v = next();
      if (!v) return false;
      args.has_replay = true;
      args.replay_seed = std::strtoull(v, nullptr, 10);
    } else if (arg == "--transition-to") {
      const char* v = next();
      if (!v) return false;
      args.transition_to = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      args.trace_out = v;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      args.metrics_out = v;
    } else if (arg == "--fsim") {
      const char* v = next();
      if (!v) return false;
      args.fsim_glob = v;
    } else if (arg == "--coverage-out") {
      const char* v = next();
      if (!v) return false;
      args.coverage_out = v;
    } else if (arg == "--auto-partition") {
      args.auto_partition = true;
    } else if (arg == "--adaptive") {
      const char* v = next();
      if (!v) return false;
      if (std::strcmp(v, "on") != 0 && std::strcmp(v, "off") != 0) {
        std::fprintf(stderr, "bad --adaptive value: %s\n", v);
        return false;
      }
      args.adaptive = std::strcmp(v, "on") == 0;
    } else if (arg == "--list-points") {
      args.list_points = true;
    } else if (arg == "--coverage-sweep") {
      args.coverage_sweep = true;
    } else if (arg == "--quick") {
      args.quick = true;
    } else if (arg == "--demo-shrink") {
      args.demo_shrink = true;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

std::string replay_command(const ChaosCampaignOptions& options) {
  std::string cmd = "chaos_runner --replay " + std::to_string(options.seed) +
                    " --ftm " + options.ftm + " --delta " +
                    (options.delta_checkpoint ? "on" : "off");
  if (!options.transition_to.empty()) {
    cmd += " --transition-to " + options.transition_to;
  }
  return cmd;
}

/// Report a failed campaign: verdict, shrunk timeline, replay command.
void report_failure(const ChaosCampaignOptions& options,
                    const ChaosCampaignResult& result) {
  std::printf("\nFAILURE seed=%llu label=%s\n",
              static_cast<unsigned long long>(result.seed),
              result.label.c_str());
  std::printf("%s", result.report.to_string().c_str());
  std::printf("\nshrinking the fault timeline (%zu episode(s))...\n",
              result.schedule.episode_count());
  const auto shrunk = rcs::core::shrink_schedule(options, result.schedule);
  std::printf("minimal failing timeline (%zu episode(s)):\n%s",
              shrunk.episode_count(), shrunk.to_string().c_str());
  std::printf("replay: %s\n", replay_command(options).c_str());
}

/// Account and print one finished campaign; shared by the serial path and
/// the --jobs merge so both emit byte-identical reports.
int report_one(const ChaosCampaignOptions& options,
               const ChaosCampaignResult& result, bool verbose,
               int& campaigns, int& failures, RunSummary& summary) {
  ++campaigns;
  summary.add(result);
  if (verbose || !result.passed) {
    std::printf("  seed=%-4llu %-18s %s (ctr=%lld retries=%llu)\n",
                static_cast<unsigned long long>(options.seed),
                result.label.c_str(), result.passed ? "PASS" : "FAIL",
                static_cast<long long>(result.final_counter),
                static_cast<unsigned long long>(result.client_stats.retries));
  }
  if (!result.passed) {
    ++failures;
    report_failure(options, result);
    return 1;
  }
  return 0;
}

int run_one(const ChaosCampaignOptions& options, bool verbose,
            int& campaigns, int& failures, RunSummary& summary) {
  const auto result = rcs::core::run_campaign(options);
  return report_one(options, result, verbose, campaigns, failures, summary);
}

bool dump_to(const std::string& path, const std::string& data,
             const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for %s\n", path.c_str(), what);
    return false;
  }
  const bool ok = std::fwrite(data.data(), 1, data.size(), f) == data.size();
  std::fclose(f);
  return ok;
}

/// Deterministic stdout footer shared by every sweep exit path, so the
/// serial-vs-jobs cmp gate also covers the coverage accounting.
void print_coverage_footer(const RunSummary& summary) {
  std::printf("fsim coverage: %zu pair(s), %llu fire(s)\n",
              summary.coverage.pair_count(),
              static_cast<unsigned long long>(summary.coverage.fire_total()));
  // One line per touched point, in catalogue (enum) order: makes "which
  // points actually fired" legible without parsing the JSON report.
  for (int i = 0; i < fsim::kPointCount; ++i) {
    const auto p = static_cast<fsim::Point>(i);
    const auto hits = summary.coverage.hits_of(p);
    if (hits == 0) continue;
    std::printf("  %-17s hits=%-6llu fires=%llu\n", fsim::to_string(p),
                static_cast<unsigned long long>(hits),
                static_cast<unsigned long long>(summary.coverage.fires_of(p)));
  }
}

int run_sweep(const Args& args, RunSummary& summary) {
  std::vector<bool> delta_modes;
  if (args.delta == "on" || args.delta == "both") delta_modes.push_back(true);
  if (args.delta == "off" || args.delta == "both") delta_modes.push_back(false);
  if (delta_modes.empty()) {
    std::fprintf(stderr, "bad --delta value: %s\n", args.delta.c_str());
    return 2;
  }
  bool fsim_on = true;
  std::vector<int> fsim_points;
  if (!resolve_fsim(args, fsim_on, fsim_points)) return 2;
  if (args.auto_partition && fsim_on) {
    std::fprintf(stderr,
                 "--auto-partition requires --fsim off (the fault-simulation "
                 "registry is shared across partitions)\n");
    return 2;
  }

  // The full campaign plan, in canonical (seed) order. --jobs executes it
  // out of order but always reports it in this order, so the output is
  // byte-identical to a serial run.
  std::vector<ChaosCampaignOptions> plan;
  for (int s = 0; s < args.seeds; ++s) {
    for (const auto& ftm : args.ftms) {
      for (const bool delta : delta_modes) {
        ChaosCampaignOptions options;
        options.seed = args.base_seed + static_cast<std::uint64_t>(s);
        options.ftm = ftm;
        options.delta_checkpoint = delta;
        options.fsim = fsim_on;
        options.fsim_points = fsim_points;
        options.threads = args.threads;
        options.auto_partition = args.auto_partition;
        options.adaptive_windows = args.adaptive;
        plan.push_back(options);
      }
    }
  }

  // Mid-campaign differential transitions, coverage-intersected chaos.
  static const SweepSpec kTransitions[] = {
      {"PBR", true, "LFR"},
      {"LFR", true, "PBR"},
      {"PBR", false, "PBR_TR"},
  };
  const std::size_t transition_start = plan.size();
  for (int s = 0; s < args.transition_seeds; ++s) {
    const auto& spec = kTransitions[static_cast<std::size_t>(s) %
                                    std::size(kTransitions)];
    ChaosCampaignOptions options;
    options.seed = args.base_seed + 1000 + static_cast<std::uint64_t>(s);
    options.ftm = spec.ftm;
    options.delta_checkpoint = spec.delta;
    options.transition_to = spec.transition_to;
    options.fsim = fsim_on;
    options.fsim_points = fsim_points;
    options.threads = args.threads;
    options.auto_partition = args.auto_partition;
    options.adaptive_windows = args.adaptive;
    plan.push_back(options);
  }

  int campaigns = 0;
  int failures = 0;
  const auto print_transition_header = [&] {
    if (args.transition_seeds > 0) {
      std::printf("transition sweep: %d seed(s) x %zu transition(s)\n",
                  args.transition_seeds, std::size(kTransitions));
    }
  };

  std::printf("chaos sweep: %d seed(s) x {", args.seeds);
  for (std::size_t i = 0; i < args.ftms.size(); ++i) {
    std::printf("%s%s", i ? "," : "", args.ftms[i].c_str());
  }
  std::printf("} x {%s}\n", args.delta.c_str());

  if (args.jobs <= 1) {
    for (std::size_t i = 0; i < plan.size(); ++i) {
      if (i == transition_start) print_transition_header();
      if (run_one(plan[i], args.verbose, campaigns, failures, summary)) {
        std::printf("\n%d campaign(s), %d failure(s)\n", campaigns,
                    failures);
        print_coverage_footer(summary);
        return 1;
      }
    }
    if (plan.size() == transition_start) print_transition_header();
    std::printf("\n%d campaign(s), %d failure(s) — all invariants held\n",
                campaigns, failures);
    print_coverage_footer(summary);
    if (!args.coverage_out.empty() &&
        !dump_to(args.coverage_out, summary.coverage.to_json(), "coverage")) {
      return 2;
    }
    return 0;
  }

  // Parallel execution: one Simulation per worker thread (campaigns are
  // independent and each owns its whole world), results merged in plan
  // order. A failing serial sweep stops at the first failure; here the
  // later campaigns have already run, but the report still cuts off at the
  // first failure in canonical order, so the two modes print the same
  // bytes either way.
  std::vector<ChaosCampaignResult> results(plan.size());
  std::vector<std::string> errors(plan.size());
  std::atomic<std::size_t> cursor{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1);
      if (i >= plan.size()) return;
      try {
        results[i] = rcs::core::run_campaign(plan[i]);
      } catch (const std::exception& e) {
        errors[i] = e.what();
      }
    }
  };
  std::vector<std::thread> workers;
  const auto worker_count = std::min<std::size_t>(
      static_cast<std::size_t>(args.jobs), std::max<std::size_t>(plan.size(), 1));
  workers.reserve(worker_count);
  for (std::size_t j = 0; j < worker_count; ++j) workers.emplace_back(worker);
  for (auto& thread : workers) thread.join();

  for (std::size_t i = 0; i < plan.size(); ++i) {
    if (i == transition_start) print_transition_header();
    if (!errors[i].empty()) {
      std::fprintf(stderr, "campaign seed=%llu died: %s\n",
                   static_cast<unsigned long long>(plan[i].seed),
                   errors[i].c_str());
      return 2;
    }
    if (report_one(plan[i], results[i], args.verbose, campaigns, failures,
                   summary)) {
      std::printf("\n%d campaign(s), %d failure(s)\n", campaigns, failures);
      print_coverage_footer(summary);
      return 1;
    }
  }
  if (plan.size() == transition_start) print_transition_header();
  std::printf("\n%d campaign(s), %d failure(s) — all invariants held\n",
              campaigns, failures);
  print_coverage_footer(summary);
  if (!args.coverage_out.empty() &&
      !dump_to(args.coverage_out, summary.coverage.to_json(), "coverage")) {
    return 2;
  }
  return 0;
}

int run_replay(const Args& args, RunSummary& summary) {
  ChaosCampaignOptions options;
  options.seed = args.replay_seed;
  options.ftm = args.replay_ftm;
  options.delta_checkpoint = args.delta != "off";
  options.transition_to = args.transition_to;
  options.record_trace = !args.trace_out.empty() || !args.metrics_out.empty();
  options.threads = args.threads;
  options.auto_partition = args.auto_partition;
  options.adaptive_windows = args.adaptive;
  if (!resolve_fsim(args, options.fsim, options.fsim_points)) return 2;
  if (options.auto_partition && options.fsim) {
    std::fprintf(stderr,
                 "--auto-partition requires --fsim off (the fault-simulation "
                 "registry is shared across partitions)\n");
    return 2;
  }
  const auto result = rcs::core::run_campaign(options);
  summary.add(result);
  std::printf("%s", result.trace.c_str());
  if (!args.trace_out.empty() &&
      !dump_to(args.trace_out, result.trace_json, "trace")) {
    return 2;
  }
  if (!args.metrics_out.empty() &&
      !dump_to(args.metrics_out, result.metrics_json, "metrics")) {
    return 2;
  }
  if (!args.coverage_out.empty() &&
      !dump_to(args.coverage_out, result.fsim.to_json(), "coverage")) {
    return 2;
  }
  if (!result.passed) {
    report_failure(options, result);
    return 1;
  }
  return 0;
}

/// --list-points: the compiled-in fault-simulation catalogue as JSON, one
/// point per line, name-sorted. Counters are zero here (no campaign ran);
/// the sweeps report live tallies through the coverage JSON instead.
int run_list_points() {
  std::vector<const fsim::PointDef*> defs;
  for (int i = 0; i < fsim::kPointCount; ++i) {
    defs.push_back(&fsim::point_def(static_cast<fsim::Point>(i)));
  }
  std::sort(defs.begin(), defs.end(),
            [](const fsim::PointDef* x, const fsim::PointDef* y) {
              return std::strcmp(x->name, y->name) < 0;
            });
  std::printf("{\"points\":[\n");
  for (std::size_t i = 0; i < defs.size(); ++i) {
    std::printf("  {\"name\":\"%s\",\"params\":\"%s\",\"description\":\"%s\","
                "\"hits\":0,\"fires\":0}%s\n",
                defs[i]->name, defs[i]->params, defs[i]->description,
                i + 1 < defs.size() ? "," : "");
  }
  std::printf("]}\n");
  return 0;
}

/// --coverage-sweep: run rounds of campaigns across every FTM/transition
/// spec until 3 consecutive rounds add no new (point, state) pair — the
/// coverage fixed point. Fully seeded, so two runs print identical bytes.
int run_coverage_sweep(const Args& args, RunSummary& summary) {
  bool fsim_on = true;
  std::vector<int> fsim_points;
  if (!resolve_fsim(args, fsim_on, fsim_points)) return 2;
  if (!fsim_on) {
    std::fprintf(stderr, "--coverage-sweep needs fault simulation enabled\n");
    return 2;
  }
  static const SweepSpec kSpecs[] = {
      {"PBR", true, ""},  {"PBR", false, ""},      {"LFR", true, ""},
      {"LFR", false, ""}, {"TR", true, ""},        {"TR", false, ""},
      {"PBR", true, "LFR"}, {"LFR", true, "PBR"},  {"PBR", false, "PBR_TR"},
  };
  const int per_spec = args.quick ? 1 : 3;
  constexpr int kDryRounds = 3;
  constexpr int kMaxRounds = 40;

  std::printf("fsim coverage sweep: %zu spec(s) x %d seed(s) per round, "
              "stopping after %d dry round(s)\n",
              std::size(kSpecs), per_spec, kDryRounds);
  fsim::CoverageReport total;
  std::uint64_t seed = args.base_seed;
  int campaigns = 0;
  int rounds = 0;
  int dry = 0;
  while (dry < kDryRounds && rounds < kMaxRounds) {
    ++rounds;
    const std::size_t before = total.pair_count();
    for (const auto& spec : kSpecs) {
      for (int k = 0; k < per_spec; ++k) {
        ChaosCampaignOptions options;
        options.seed = seed++;
        options.ftm = spec.ftm;
        options.delta_checkpoint = spec.delta;
        options.transition_to = spec.transition_to;
        options.fsim_points = fsim_points;
        options.threads = args.threads;
        const auto result = rcs::core::run_campaign(options);
        ++campaigns;
        summary.add(result);
        total.merge(result.fsim);
        if (!result.passed) {
          report_failure(options, result);
          return 1;
        }
      }
    }
    const std::size_t gained = total.pair_count() - before;
    std::printf("round %d: %d campaign(s), %zu new pair(s), %zu total\n",
                rounds, static_cast<int>(std::size(kSpecs)) * per_spec, gained,
                total.pair_count());
    dry = gained == 0 ? dry + 1 : 0;
  }
  std::printf("\ncoverage fixed point after %d round(s): %zu pair(s), "
              "%llu fire(s) over %d campaign(s)\n",
              rounds, total.pair_count(),
              static_cast<unsigned long long>(total.fire_total()), campaigns);
  std::printf("%s", total.to_json().c_str());
  if (!args.coverage_out.empty() &&
      !dump_to(args.coverage_out, total.to_json(), "coverage")) {
    return 2;
  }
  return 0;
}

int run_demo_shrink(const Args& args) {
  // Intentionally broken oracle: any retransmission counts as a violation.
  // Chaos makes retries inevitable, so the campaign fails and the shrinker
  // demonstrably reduces the timeline to (usually) a single episode.
  ChaosCampaignOptions options;
  options.seed = args.base_seed;
  options.ftm = args.ftms.empty() ? "PBR" : args.ftms.front();
  options.forbid_retries = true;
  std::printf("demo: oracle forbids retries; chaos must violate it\n");
  const auto result = rcs::core::run_campaign(options);
  if (result.passed) {
    std::printf("unexpected PASS — no retries under seed %llu; "
                "try another --base-seed\n",
                static_cast<unsigned long long>(options.seed));
    return 1;
  }
  report_failure(options, result);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!parse_args(argc, argv, args)) {
    usage();
    return 2;
  }
  rcs::log().set_level(args.verbose ? rcs::LogLevel::kInfo
                                    : rcs::LogLevel::kWarn);
  if (args.verbose) rcs::log().set_stderr_level(rcs::LogLevel::kInfo);
  if (args.list_points) return run_list_points();
  if (args.demo_shrink) return run_demo_shrink(args);
  RunSummary summary;
  const int rc = args.coverage_sweep ? run_coverage_sweep(args, summary)
                 : args.has_replay  ? run_replay(args, summary)
                                    : run_sweep(args, summary);
  summary.print();
  return rc;
}
