// Automotive over-the-air update scenario (the paper's §2 motivation: OTA
// software updates are "a very important trend in the automotive industry").
//
// An ECU function runs replicated across two zonal controllers under LFR.
// An OTA update ships v2 of the function, which is NON-deterministic
// (it fuses a noisy sensor) — the update invalidates active replication
// (Table 1's determinism requirement). The OTA manager announces the new
// application characteristics; the resilience manager reacts with a
// mandatory transition to PBR before the update goes live. The example also
// contrasts the differential transition against a monolithic replacement of
// the whole FTM (what a preprogrammed system would do).
#include <cstdio>

#include "rcs/core/system.hpp"

using namespace rcs;

int main() {
  std::printf("=== Automotive OTA scenario ===\n\n");

  core::SystemOptions options;
  options.app_type = "app.kvstore";
  options.start_monitoring = false;
  core::ResilientSystem system(options);

  std::printf("ECU function v1 (deterministic) under LFR on two zonal "
              "controllers\n");
  system.deploy_and_wait(ftm::FtmConfig::lfr());
  for (int i = 0; i < 4; ++i) {
    (void)system.roundtrip(
        Value::map().set("op", "incr").set("key", "odometer").set("by", 1));
  }

  // --- The OTA campaign announces v2's characteristics ---------------------
  std::printf("\nOTA campaign: v2 fuses a noisy sensor -> non-deterministic\n");
  ftm::AppSpec v2 = system.app_spec();
  v2.deterministic = false;
  system.manager().notify_app_change(v2, "OTA function v2");
  system.sim().run_for(20 * sim::kSecond);

  const auto& entry = system.manager().history().back();
  std::printf("resilience manager: %s transition %s -> %s (%s)\n",
              to_string(entry.decision), entry.from.c_str(), entry.to.c_str(),
              entry.executed ? "executed" : "refused");
  std::printf("FTM now: %s — v2 may go live\n\n",
              system.engine().current().name.c_str());

  // State survived the FTM change: the odometer did not reset.
  const Value odo = system.roundtrip(
      Value::map().set("op", "get").set("key", "odometer"), 30 * sim::kSecond);
  std::printf("odometer after transition: %lld (no state transfer needed)\n",
              static_cast<long long>(odo.at("result").at("value").as_int()));

  // --- Differential vs monolithic, the garage comparison -------------------
  std::printf("\nComparing update strategies for the next FTM change:\n");
  const auto differential = system.transition_and_wait(ftm::FtmConfig::a_pbr());
  std::printf("  differential PBR -> A&PBR : %6.0f ms, %d component(s), "
              "%zu KB shipped\n",
              sim::to_ms(differential.mean_replica_total()),
              differential.components_shipped,
              differential.package_bytes / 1024);

  const auto monolithic = system.monolithic_and_wait(ftm::FtmConfig::pbr());
  std::printf("  monolithic  A&PBR -> PBR  : %6.0f ms, %d component(s), "
              "%zu KB shipped (incl. state transfer)\n",
              sim::to_ms(monolithic.mean_replica_total()),
              monolithic.components_shipped, monolithic.package_bytes / 1024);

  std::printf("\ndifferential is %.1fx faster and ships %.1fx less code\n",
              static_cast<double>(monolithic.mean_replica_total()) /
                  static_cast<double>(differential.mean_replica_total()),
              static_cast<double>(monolithic.package_bytes) /
                  static_cast<double>(differential.package_bytes));
  return 0;
}
