// Satellite mission: a long-lived space system rides out environment changes
// by adapting its fault tolerance on-line (the paper's primary motivation:
// systems that cannot be stopped for off-line maintenance).
//
// Mission timeline (all detected by the monitoring engine or commanded by
// the ground segment = system manager):
//   phase 1  LEOP          PBR on the full downlink
//   phase 2  cruise        downlink budget collapses -> mandatory PBR->LFR
//   phase 3  radiation     ground proactively strengthens the fault model
//                          (transients) before crossing the South Atlantic
//                          Anomaly -> LFR->LFR⊕TR
//   phase 4  aging         persistent value-fault evidence -> permanent
//                          faults suspected -> A&Duplex
//   phase 5  new hardware  ground swaps the payload computer and approves
//                          the possible transition back to LFR
// Telemetry keeps flowing through every phase; the example prints the FTM
// history and verifies no phase lost requests.
#include <cstdio>

#include "rcs/core/system.hpp"

using namespace rcs;

namespace {

struct Telemetry {
  int sent{0};
  int ok{0};
  int phase_sent{0};
  int phase_ok{0};
  void new_phase() { phase_sent = phase_ok = 0; }
};

void beam_telemetry(core::ResilientSystem& system, Telemetry& telemetry,
                    int count) {
  for (int i = 0; i < count; ++i) {
    ++telemetry.sent;
    ++telemetry.phase_sent;
    system.client().send(
        Value::map().set("op", "incr").set("key", "frames").set("by", 1),
        [&telemetry](const Value& reply) {
          if (!reply.has("error")) {
            ++telemetry.ok;
            ++telemetry.phase_ok;
          }
        });
    system.sim().run_for(400 * sim::kMillisecond);
  }
  system.sim().run_for(5 * sim::kSecond);
}

void phase(core::ResilientSystem& system, const char* name,
           Telemetry* telemetry = nullptr) {
  if (telemetry != nullptr) telemetry->new_phase();
  std::printf("\n== %-42s t=%7.1fs  FTM=%s\n", name,
              static_cast<double>(system.sim().now()) / sim::kSecond,
              system.engine().current().name.c_str());
}

}  // namespace

int main() {
  std::printf("=== Satellite mission scenario ===\n");

  core::SystemOptions options;
  options.app_type = "app.kvstore";  // telemetry store with checkpointable state
  options.monitor_interval = 300 * sim::kMillisecond;
  core::ResilientSystem system(options);
  Telemetry telemetry;

  phase(system, "phase 1: LEOP, full downlink, deploy PBR");
  system.deploy_and_wait(ftm::FtmConfig::pbr());
  beam_telemetry(system, telemetry, 5);

  phase(system, "phase 2: cruise, downlink budget collapses", &telemetry);
  system.sim()
      .network()
      .link(system.replica(0).id(), system.replica(1).id())
      .bandwidth_bps = 400'000.0;  // probes fire, transition is MANDATORY
  system.sim().run_for(20 * sim::kSecond);
  beam_telemetry(system, telemetry, 5);
  std::printf("   monitoring forced %s (checkpoints no longer fit)\n",
              system.engine().current().name.c_str());

  phase(system, "phase 3: approaching radiation zone (proactive)", &telemetry);
  // Ground commands a stronger fault model BEFORE the faults arrive (§5.4).
  system.manager().notify_fault_model_change(
      core::FaultModel{true, true, false}, "South Atlantic Anomaly crossing");
  system.sim().run_for(20 * sim::kSecond);
  std::printf("   proactive transition to %s complete\n",
              system.engine().current().name.c_str());
  // The anomaly hits: bit flips on the primary payload computer. TR masks.
  system.faults().transient_campaign(
      system.replica(0).id(), system.sim().now(),
      system.sim().now() + 10 * sim::kSecond, 0.4);
  beam_telemetry(system, telemetry, 10);
  std::printf("   TR masked %llu mismatching executions\n",
              static_cast<unsigned long long>(
                  system.monitoring().events_observed("tr_mismatch")));

  phase(system, "phase 4: payload computer aging (permanent faults)", &telemetry);
  system.replica(0).faults().permanent = true;
  beam_telemetry(system, telemetry, 10);
  system.sim().run_for(30 * sim::kSecond);
  std::printf("   evidence-driven escalation to %s\n",
              system.engine().current().name.c_str());
  system.replica(0).faults().permanent = true;  // hardware is still bad
  beam_telemetry(system, telemetry, 5);

  phase(system, "phase 5: hardware replaced, ground approves relaxation", &telemetry);
  system.replica(0).faults().permanent = false;
  system.manager().set_approval_policy(
      [](const ftm::FtmConfig& target, const std::string& reason) {
        std::printf("   [ground] approving transition to %s: %s\n",
                    target.name.c_str(), reason.c_str());
        return true;
      });
  system.manager().notify_fault_model_change(core::FaultModel{true, false, false},
                                             "payload computer replaced");
  system.sim().run_for(30 * sim::kSecond);
  beam_telemetry(system, telemetry, 5);

  std::printf("\n=== Mission summary ===\n");
  std::printf("telemetry frames: %d sent, %d acknowledged\n", telemetry.sent,
              telemetry.ok);
  std::printf("(frames can be lost only in phase 4, between the first\n"
              " permanent-fault symptoms and the A&Duplex transition)\n");
  std::printf("adaptation history:\n");
  for (const auto& entry : system.manager().history()) {
    if (entry.to.empty()) continue;
    std::printf("  %-48s %-9s %s -> %s%s\n", entry.cause.c_str(),
                to_string(entry.decision), entry.from.c_str(), entry.to.c_str(),
                entry.executed ? "" : "  (not executed)");
  }
  std::printf("final FTM: %s\n", system.engine().current().name.c_str());
  // Success criteria: the final phase is clean and the system relaxed back.
  const bool final_phase_clean = telemetry.phase_sent == telemetry.phase_ok;
  const bool relaxed = system.engine().current().name == "LFR";
  return final_phase_clean && relaxed ? 0 : 1;
}
