// Quickstart: deploy a fault-tolerant counter, watch it survive a crash,
// and perform one on-line FTM transition.
//
//   $ ./quickstart
//
// Walks through the core public API:
//   1. build a ResilientSystem (5 simulated hosts: 2 replicas, client,
//      manager, repository);
//   2. deploy Primary-Backup Replication (PBR) from scratch;
//   3. send requests through the fault-tolerant client;
//   4. crash the primary and watch the backup take over with the state;
//   5. restart the crashed replica — it rejoins automatically;
//   6. execute a differential transition PBR -> LFR while requests flow.
#include <cstdio>

#include "rcs/core/system.hpp"

using namespace rcs;

namespace {
Value incr() {
  return Value::map().set("op", "incr").set("key", "hits").set("by", 1);
}
}  // namespace

int main() {
  std::printf("=== Resilient computing quickstart ===\n\n");

  core::SystemOptions options;
  options.app_type = "app.counter";
  options.start_monitoring = false;  // we drive everything by hand here
  core::ResilientSystem system(options);

  // 1-2. Deploy PBR from scratch (package fetched from the repository,
  // deployment scripts executed on both replicas).
  const auto deploy = system.deploy_and_wait(ftm::FtmConfig::pbr());
  std::printf("deployed %s in %.0f ms (virtual) — %d components per replica\n",
              deploy.to.c_str(), sim::to_ms(deploy.mean_replica_total()),
              deploy.components_shipped);

  // 3. Requests flow through the replicated counter.
  for (int i = 0; i < 3; ++i) {
    const Value reply = system.roundtrip(incr());
    std::printf("counter = %lld (%.1f ms round trip)\n",
                static_cast<long long>(reply.at("result").at("value").as_int()),
                system.client().stats().latency_count() == 0
                    ? 0.0
                    : sim::to_ms(system.client().stats().last_latency));
  }

  // 4. Crash the primary mid-service.
  std::printf("\n-- crashing the primary --\n");
  system.replica(0).crash();
  const Value survived = system.roundtrip(incr(), 30 * sim::kSecond);
  std::printf("counter = %lld  (backup promoted itself, state intact)\n",
              static_cast<long long>(survived.at("result").at("value").as_int()));

  // 5. Restart: the node agent queries its peer and rejoins as backup.
  std::printf("\n-- restarting the crashed replica --\n");
  system.replica(0).restart();
  system.sim().run_for(3 * sim::kSecond);
  std::printf("replica0 role: %s, replica1 role: %s\n",
              to_string(system.agent(0).runtime().kernel().role()),
              to_string(system.agent(1).runtime().kernel().role()));

  // 6. On-line differential transition to Leader-Follower Replication.
  std::printf("\n-- transition PBR -> LFR (differential) --\n");
  const auto transition = system.transition_and_wait(ftm::FtmConfig::lfr());
  std::printf("replaced %d brick(s) in %.0f ms (vs %.0f ms full deployment)\n",
              transition.components_shipped,
              sim::to_ms(transition.mean_replica_total()),
              sim::to_ms(deploy.mean_replica_total()));

  const Value after = system.roundtrip(incr(), 30 * sim::kSecond);
  std::printf("counter = %lld under %s — state survived the transition\n",
              static_cast<long long>(after.at("result").at("value").as_int()),
              system.engine().current().name.c_str());

  std::printf("\nclient: %llu sent, %llu ok, %llu retries, mean %.1f ms\n",
              static_cast<unsigned long long>(system.client().stats().sent),
              static_cast<unsigned long long>(system.client().stats().ok),
              static_cast<unsigned long long>(system.client().stats().retries),
              system.client().stats().mean_latency_ms());
  return 0;
}
