// Replica groups: "multiple Backups or Followers" (§3.2.1).
//
// A five-replica PBR group absorbs four cascaded crashes without losing a
// single acknowledged update, promoting deterministically by replica rank;
// a group-wide differential transition then retunes the surviving pair.
//
//   $ ./replica_group
#include <cstdio>

#include "rcs/core/system.hpp"

using namespace rcs;

namespace {
Value incr() {
  return Value::map().set("op", "incr").set("key", "updates").set("by", 1);
}

const char* role_of(core::ResilientSystem& system, std::size_t index) {
  if (!system.replica(index).alive()) return "CRASHED";
  if (!system.agent(index).runtime().deployed()) return "-";
  return to_string(system.agent(index).runtime().kernel().role());
}

void print_group(core::ResilientSystem& system) {
  std::printf("   group:");
  for (std::size_t i = 0; i < system.replica_count(); ++i) {
    std::printf("  replica%zu=%s", i, role_of(system, i));
  }
  std::printf("\n");
}
}  // namespace

int main() {
  std::printf("=== Five-replica group: surviving four crashes ===\n\n");

  core::SystemOptions options;
  options.replica_count = 5;
  options.start_monitoring = false;
  core::ResilientSystem system(options);

  const auto deploy = system.deploy_and_wait(ftm::FtmConfig::pbr());
  std::printf("deployed PBR on %zu replicas (%d components each, %.0f ms)\n",
              system.replica_count(), deploy.components_shipped,
              sim::to_ms(deploy.mean_replica_total()));
  print_group(system);

  std::int64_t updates = 0;
  const auto push_updates = [&](int count) {
    for (int i = 0; i < count; ++i) {
      const Value reply = system.roundtrip(incr(), 60 * sim::kSecond);
      if (reply.has("error")) {
        std::printf("   !! update lost: %s\n", reply.to_string().c_str());
        return false;
      }
      updates = reply.at("result").at("value").as_int();
    }
    return true;
  };

  if (!push_updates(3)) return 1;
  std::printf("\n3 updates accepted (counter=%lld); every checkpoint waits "
              "for all %zu backup acks\n",
              static_cast<long long>(updates), system.replica_count() - 1);

  for (std::size_t crash = 0; crash + 1 < system.replica_count(); ++crash) {
    std::printf("\n-- crash replica%zu (the current master) --\n", crash);
    system.replica(crash).crash();
    if (!push_updates(2)) return 1;
    system.sim().run_for(sim::kSecond);
    print_group(system);
    std::printf("   counter=%lld — state carried through failover #%zu\n",
                static_cast<long long>(updates), crash + 1);
  }

  std::printf("\nfinal: %lld updates acknowledged, %lld recorded — ",
              static_cast<long long>(3 + 4 * 2),
              static_cast<long long>(updates));
  const bool exact = updates == 3 + 4 * 2;
  std::printf(exact ? "exactly once each\n" : "MISMATCH\n");
  std::printf("the last replica serves %s after four cascaded crashes\n",
              role_of(system, 4));
  return exact ? 0 : 1;
}
