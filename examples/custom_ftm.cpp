// Extending the framework with a brick that did not exist at design time —
// the paper's headline claim: "new FTMs can be designed off-line at any
// point during service life and integrated on-line" (§2, agile adaptation).
//
// We define a new syncAfter brick, "custom.syncAfter.lfr_audit": LFR's
// agreement phase extended with an audit trail (every reply digest is
// journaled to stable storage — think certification evidence for a safety
// case). We assemble a custom FTM from it, register it with the running
// repository, and transition the live system onto it — no redeployment, no
// restart, the two untouched bricks keep running.
//
// This mirrors §8's observation that the Before-Proceed-After scheme carries
// over to other non-functional mechanisms (audit, encryption, ...).
#include <cstdio>

#include "rcs/core/system.hpp"
#include "rcs/ftm/sync_after_duplex.hpp"
#include "rcs/sim/stable_storage.hpp"

using namespace rcs;

namespace {

/// The new brick: LFR notification + audit journaling. Developed "off-line"
/// (here: in this example file), shipped on-line via a transition package.
class SyncAfterLfrAudit final : public ftm::SyncAfterDuplexBase {
 public:
  SyncAfterLfrAudit() : SyncAfterDuplexBase(/*with_assertion=*/false) {}

  static comp::ComponentTypeInfo type_info() {
    comp::ComponentTypeInfo info;
    info.type_name = "custom.syncAfter.lfr_audit";
    info.description = "syncAfter: LFR notification + audit trail";
    info.category = comp::TypeCategory::kBrick;
    info.services = {{"in", ftm::iface::kSyncAfter}};
    info.references = {{"control", ftm::iface::kProtocolControl},
                       {"replyLog", ftm::iface::kReplyLog},
                       {"state", ftm::iface::kStateManager, false}};
    info.code_size = 15'000;
    info.source_file = "examples/custom_ftm.cpp";
    info.factory = [] { return std::make_unique<SyncAfterLfrAudit>(); };
    return info;
  }

 protected:
  Value master_after(const Value& ctx) override {
    audit(ctx);
    if (!peer_available(ctx)) return done();
    Value data = Value::map();
    data.set("key", ctx.at("key")).set("digest", digest(ctx.at("result")));
    send_peer("after", "notify", std::move(data));
    count_event("notification");
    return done();
  }

  Value on_solicited(const Value& ctx, const Value& message) override {
    if (message.at("kind").as_string() == "notify" &&
        message.at("data").at("digest").as_int() != digest(ctx.at("result"))) {
      report_fault("divergence");
    }
    audit(ctx);
    return done();
  }

  Value on_unsolicited(const Value& message) override {
    if (message.at("kind").as_string() == "notify") return stash_directive();
    return Value::map();
  }

  Value forwarded_after(const Value& /*ctx*/) override {
    return wait_for("notify");
  }

 private:
  void audit(const Value& ctx) {
    if (host() == nullptr) return;
    // Certification evidence survives crashes: journal to stable storage.
    Value trail = host()->stable().get("audit.trail");
    if (!trail.is_list()) trail = Value::list();
    trail.push_back(Value::map()
                        .set("key", ctx.at("key"))
                        .set("digest", digest(ctx.at("result"))));
    host()->stable().put("audit.trail", trail);
  }
};

}  // namespace

int main() {
  std::printf("=== Custom FTM: LFR with audit trail ===\n\n");

  core::SystemOptions options;
  options.start_monitoring = false;
  core::ResilientSystem system(options);

  system.deploy_and_wait(ftm::FtmConfig::lfr());
  for (int i = 0; i < 3; ++i) {
    (void)system.roundtrip(
        Value::map().set("op", "incr").set("key", "n").set("by", 1));
  }
  std::printf("running plain LFR; 3 requests served\n");

  // --- "Off-line" development: register the new brick + FTM ----------------
  comp::ComponentRegistry::instance().register_type(
      SyncAfterLfrAudit::type_info());
  ftm::FtmConfig lfr_audit;
  lfr_audit.name = "LFR_AUDIT";
  lfr_audit.sync_before = ftm::brick::kSyncBeforeLfr;     // reused
  lfr_audit.proceed = ftm::brick::kProceedCompute;        // reused
  lfr_audit.sync_after = "custom.syncAfter.lfr_audit";    // the new brick
  lfr_audit.duplex = true;
  std::printf("\nnew FTM designed off-line: %s = {%s, %s, %s}\n",
              lfr_audit.name.c_str(), lfr_audit.sync_before.c_str(),
              lfr_audit.proceed.c_str(), lfr_audit.sync_after.c_str());
  std::printf("differential distance from LFR: %d brick\n",
              ftm::FtmConfig::lfr().diff_size(lfr_audit));

  // --- On-line integration: one-brick transition on the live system --------
  const auto report = system.transition_and_wait(lfr_audit);
  std::printf("transition LFR -> LFR_AUDIT: ok=%d, %d component shipped, "
              "%.0f ms\n",
              report.ok, report.components_shipped,
              sim::to_ms(report.mean_replica_total()));

  for (int i = 0; i < 4; ++i) {
    (void)system.roundtrip(
        Value::map().set("op", "incr").set("key", "n").set("by", 1),
        30 * sim::kSecond);
  }

  const Value trail = system.replica(0).stable().get("audit.trail");
  std::printf("\naudit trail on the leader: %zu entries "
              "(journaled to stable storage)\n",
              trail.is_list() ? trail.size() : 0);
  const Value reply = system.roundtrip(
      Value::map().set("op", "get").set("key", "n"), 30 * sim::kSecond);
  std::printf("counter = %lld — state survived the custom transition\n",
              static_cast<long long>(reply.at("result").at("value").as_int()));
  return report.ok && trail.is_list() && trail.size() >= 4 ? 0 : 1;
}
