#include "rcs/component/composite.hpp"

#include "rcs/component/package.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "test_types.hpp"

namespace rcs::comp {
namespace {

using testing::LifecycleSpy;
using testing::make_full_registry;

struct CompositeFixture : ::testing::Test {
  ComponentRegistry registry = make_full_registry();
  Composite root{"root", {.registry = &registry}};
};

TEST_F(CompositeFixture, AddCreatesStoppedComponent) {
  Component& c = root.add("test.echo", "echo");
  EXPECT_EQ(c.state(), LifecycleState::kStopped);
  EXPECT_EQ(c.name(), "echo");
  EXPECT_EQ(c.type_name(), "test.echo");
  EXPECT_TRUE(root.has("echo"));
}

TEST_F(CompositeFixture, AddRejectsDuplicateName) {
  root.add("test.echo", "x");
  EXPECT_THROW(root.add("test.upper", "x"), ComponentError);
}

TEST_F(CompositeFixture, AddRejectsUnknownType) {
  EXPECT_THROW(root.add("no.such.type", "x"), ComponentError);
}

TEST_F(CompositeFixture, HostLibraryGatesInstantiation) {
  HostLibrary library;
  library.install_type(registry, "test.echo");
  Composite gated{"gated", {.library = &library, .registry = &registry}};
  EXPECT_NO_THROW(gated.add("test.echo", "ok"));
  EXPECT_THROW(gated.add("test.upper", "missing"), ComponentError);
}

TEST_F(CompositeFixture, InvokeRequiresStartedComponent) {
  root.add("test.echo", "echo");
  EXPECT_THROW(root.invoke("echo", "svc", "op", {}), ComponentError);
  root.start("echo");
  const Value out = root.invoke("echo", "svc", "ping", Value(1));
  EXPECT_EQ(out.at("op").as_string(), "ping");
  EXPECT_EQ(out.at("args").as_int(), 1);
}

TEST_F(CompositeFixture, InvokeRejectsUndeclaredService) {
  root.add("test.echo", "echo");
  root.start("echo");
  EXPECT_THROW(root.invoke("echo", "nosvc", "op", {}), ComponentError);
}

TEST_F(CompositeFixture, StartRequiresRequiredReferencesWired) {
  root.add("test.forwarder", "fwd");
  EXPECT_THROW(root.start("fwd"), ComponentError);
  root.add("test.echo", "echo");
  root.wire("fwd", "next", "echo", "svc");
  EXPECT_NO_THROW(root.start("fwd"));
}

TEST_F(CompositeFixture, OptionalReferenceDoesNotBlockStart) {
  root.add("test.optional", "opt");
  EXPECT_NO_THROW(root.start("opt"));
  EXPECT_EQ(root.invoke("opt", "svc", "op", {}).as_string(), "unwired");
}

TEST_F(CompositeFixture, OptionalReferenceUsedWhenWired) {
  root.add("test.optional", "opt");
  root.add("test.echo", "echo");
  root.wire("opt", "maybe", "echo", "svc");
  root.start("opt");
  root.start("echo");
  EXPECT_EQ(root.invoke("opt", "svc", "hi", {}).at("op").as_string(), "hi");
}

TEST_F(CompositeFixture, CallsFlowThroughWires) {
  root.add("test.forwarder", "fwd");
  root.add("test.echo", "echo");
  root.wire("fwd", "next", "echo", "svc");
  root.start("echo");
  root.start("fwd");
  const Value out = root.invoke("fwd", "svc", "fwd-op", Value("payload"));
  EXPECT_EQ(out.at("op").as_string(), "fwd-op");
  EXPECT_EQ(out.at("args").as_string(), "payload");
}

TEST_F(CompositeFixture, RewiringRedirectsCallsWithoutTouchingCaller) {
  root.add("test.forwarder", "fwd");
  root.add("test.echo", "echo");
  root.add("test.upper", "upper");
  root.wire("fwd", "next", "echo", "svc");
  root.start("echo");
  root.start("upper");
  root.start("fwd");
  EXPECT_TRUE(root.invoke("fwd", "svc", "x", {}).is_map());

  // The differential-transition move: swap the wire target while the caller
  // stays started and untouched.
  root.unwire("fwd", "next");
  root.wire("fwd", "next", "upper", "svc");
  EXPECT_EQ(root.invoke("fwd", "svc", "x", {}).as_string(), "upper:x");
}

TEST_F(CompositeFixture, WireRejectsInterfaceMismatch) {
  root.add("test.forwarder", "fwd");
  root.add("test.other", "other");
  EXPECT_THROW(root.wire("fwd", "next", "other", "svc"), ComponentError);
}

TEST_F(CompositeFixture, WireRejectsUnknownPorts) {
  root.add("test.forwarder", "fwd");
  root.add("test.echo", "echo");
  EXPECT_THROW(root.wire("fwd", "bogusref", "echo", "svc"), ComponentError);
  EXPECT_THROW(root.wire("fwd", "next", "echo", "bogussvc"), ComponentError);
  EXPECT_THROW(root.wire("ghost", "next", "echo", "svc"), ComponentError);
}

TEST_F(CompositeFixture, WireRejectsDoubleWiring) {
  root.add("test.forwarder", "fwd");
  root.add("test.echo", "echo");
  root.wire("fwd", "next", "echo", "svc");
  EXPECT_THROW(root.wire("fwd", "next", "echo", "svc"), ComponentError);
}

TEST_F(CompositeFixture, UnwireOfUnwiredThrows) {
  root.add("test.forwarder", "fwd");
  EXPECT_THROW(root.unwire("fwd", "next"), ComponentError);
}

TEST_F(CompositeFixture, CallThroughUnwiredReferenceThrows) {
  root.add("test.optional", "opt");
  root.add("test.forwarder", "fwd");
  root.add("test.echo", "echo");
  root.wire("fwd", "next", "echo", "svc");
  root.start("fwd");
  root.start("echo");
  root.unwire("fwd", "next");
  EXPECT_THROW(root.invoke("fwd", "svc", "x", {}), ComponentError);
}

TEST_F(CompositeFixture, RemoveRequiresStoppedAndUnwired) {
  root.add("test.forwarder", "fwd");
  root.add("test.echo", "echo");
  root.wire("fwd", "next", "echo", "svc");
  root.start("echo");

  EXPECT_THROW(root.remove("echo"), ComponentError);  // started
  root.stop("echo");
  EXPECT_THROW(root.remove("echo"), ComponentError);  // still wired (as target)
  EXPECT_THROW(root.remove("fwd"), ComponentError);   // wired (as source)
  root.unwire("fwd", "next");
  EXPECT_NO_THROW(root.remove("echo"));
  EXPECT_NO_THROW(root.remove("fwd"));
  EXPECT_FALSE(root.has("echo"));
}

TEST_F(CompositeFixture, StopIsIdempotentStartIsIdempotent) {
  LifecycleSpy::reset();
  root.add("test.spy", "spy");
  root.start("spy");
  root.start("spy");
  EXPECT_EQ(LifecycleSpy::starts, 1);
  root.stop("spy");
  root.stop("spy");
  EXPECT_EQ(LifecycleSpy::stops, 1);
}

TEST_F(CompositeFixture, DefaultPropertiesComeFromTypeInfo) {
  root.add("test.spy", "spy");
  EXPECT_EQ(root.property("spy", "mode").as_string(), "default");
}

TEST_F(CompositeFixture, SetPropertyFiresHook) {
  LifecycleSpy::reset();
  root.add("test.spy", "spy");
  root.set_property("spy", "mode", Value("primary"));
  EXPECT_EQ(root.property("spy", "mode").as_string(), "primary");
  EXPECT_EQ(LifecycleSpy::property_changes, 1);
}

TEST_F(CompositeFixture, PropertyOfMissingKeyIsNull) {
  root.add("test.echo", "echo");
  EXPECT_TRUE(root.property("echo", "nope").is_null());
}

TEST_F(CompositeFixture, IntrospectionListsChildrenAndWires) {
  root.add("test.forwarder", "fwd");
  root.add("test.echo", "echo");
  root.wire("fwd", "next", "echo", "svc");

  const auto children = root.children();
  EXPECT_EQ(children.size(), 2u);
  EXPECT_NE(std::find(children.begin(), children.end(), "fwd"), children.end());

  const auto wires = root.wires();
  ASSERT_EQ(wires.size(), 1u);
  EXPECT_EQ(wires[0], (WireInfo{"fwd", "next", "echo", "svc"}));
  EXPECT_TRUE(root.is_wired("fwd", "next"));
  EXPECT_FALSE(root.is_wired("echo", "anything"));
}

TEST_F(CompositeFixture, ValidateDetectsUnwiredRequiredReferenceOfStarted) {
  root.add("test.forwarder", "fwd");
  root.add("test.echo", "echo");
  root.wire("fwd", "next", "echo", "svc");
  root.start("fwd");
  EXPECT_TRUE(root.validate().is_ok());
  root.unwire("fwd", "next");
  const Status s = root.validate();
  EXPECT_EQ(s.code(), ErrorCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("fwd"), std::string::npos);
}

TEST_F(CompositeFixture, ValidateOkOnEmptyComposite) {
  EXPECT_TRUE(root.validate().is_ok());
}

TEST_F(CompositeFixture, ChildLookupFailureThrows) {
  EXPECT_THROW((void)root.child("ghost"), ComponentError);
  EXPECT_THROW(root.start("ghost"), ComponentError);
  EXPECT_THROW(root.stop("ghost"), ComponentError);
  EXPECT_THROW(root.remove("ghost"), ComponentError);
}

}  // namespace
}  // namespace rcs::comp
