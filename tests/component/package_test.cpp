#include "rcs/component/package.hpp"

#include <gtest/gtest.h>

#include "test_types.hpp"

namespace rcs::comp {
namespace {

struct PackageFixture : ::testing::Test {
  ComponentRegistry registry = testing::make_test_registry();
};

TEST_F(PackageFixture, EntryCodeMatchesDeclaredSize) {
  const auto& info = registry.info("test.echo");
  const auto entry = PackageEntry::for_type(info);
  EXPECT_EQ(entry.code.size(), info.code_size);
  EXPECT_EQ(entry.checksum, fnv1a(entry.code));
}

TEST_F(PackageFixture, CodeIsDeterministicPerTypeAndDiffersAcrossTypes) {
  const auto a1 = PackageEntry::for_type(registry.info("test.echo"));
  const auto a2 = PackageEntry::for_type(registry.info("test.echo"));
  const auto b = PackageEntry::for_type(registry.info("test.upper"));
  EXPECT_EQ(a1.code, a2.code);
  EXPECT_NE(a1.code, b.code);
}

TEST_F(PackageFixture, PackageEncodeDecodeRoundTrip) {
  ComponentPackage package("transition:pbr->lfr");
  package.add_type(registry, "test.echo");
  package.add_type(registry, "test.upper");

  const auto decoded = ComponentPackage::decode(package.encode());
  EXPECT_EQ(decoded.name(), "transition:pbr->lfr");
  ASSERT_EQ(decoded.entries().size(), 2u);
  EXPECT_EQ(decoded.entries()[0].type_name, "test.echo");
  EXPECT_EQ(decoded.entries()[0].code, package.entries()[0].code);
  EXPECT_EQ(decoded.total_code_size(), package.total_code_size());
}

TEST_F(PackageFixture, LibraryInstallAndQuery) {
  HostLibrary library;
  EXPECT_FALSE(library.installed("test.echo"));
  library.install_type(registry, "test.echo");
  EXPECT_TRUE(library.installed("test.echo"));
  EXPECT_EQ(library.version("test.echo"), 1u);
  EXPECT_EQ(library.version("missing"), 0u);
}

TEST_F(PackageFixture, InstallRejectsCorruptedCode) {
  HostLibrary library;
  auto entry = PackageEntry::for_type(registry.info("test.echo"));
  entry.code[0] ^= 0xFF;  // bit-flip in transit
  const Status s = library.install(entry);
  EXPECT_EQ(s.code(), ErrorCode::kFailedPrecondition);
  EXPECT_FALSE(library.installed("test.echo"));
}

TEST_F(PackageFixture, InstallPackageStopsAtFirstFailure) {
  HostLibrary library;
  ComponentPackage package("p");
  package.add_type(registry, "test.echo");
  auto bad = PackageEntry::for_type(registry.info("test.upper"));
  bad.checksum ^= 1;
  package.add(bad);
  package.add_type(registry, "test.other");

  const Status s = library.install(package);
  EXPECT_FALSE(s.is_ok());
  EXPECT_TRUE(library.installed("test.echo"));
  EXPECT_FALSE(library.installed("test.other")) << "install stops at failure";
}

TEST_F(PackageFixture, ReinstallUpgradesVersion) {
  HostLibrary library;
  auto entry = PackageEntry::for_type(registry.info("test.echo"));
  library.install(entry).check();
  entry.version = 3;
  library.install(entry).check();
  EXPECT_EQ(library.version("test.echo"), 3u);
  // Downgrade attempts keep the newer version.
  entry.version = 2;
  library.install(entry).check();
  EXPECT_EQ(library.version("test.echo"), 3u);
}

TEST_F(PackageFixture, RemoveUninstalls) {
  HostLibrary library;
  library.install_type(registry, "test.echo");
  library.remove("test.echo");
  EXPECT_FALSE(library.installed("test.echo"));
}

TEST_F(PackageFixture, InstallAllCoversRegistry) {
  HostLibrary library;
  library.install_all(registry);
  EXPECT_EQ(library.installed_types().size(), registry.type_names().size());
}

TEST_F(PackageFixture, TotalCodeSizeSumsEntries) {
  ComponentPackage package("p");
  package.add_type(registry, "test.echo");
  const auto one = package.total_code_size();
  package.add_type(registry, "test.upper");
  EXPECT_EQ(package.total_code_size(),
            one + registry.info("test.upper").code_size);
}

}  // namespace
}  // namespace rcs::comp
