// Shared lambda component types for component/script tests.
#pragma once

#include "rcs/component/component.hpp"
#include "rcs/component/registry.hpp"

namespace rcs::comp::testing {

/// Builds a registry with small synthetic types:
///  - "test.echo":      provides svc(I.Echo); returns {"op":op,"args":args}
///  - "test.upper":     provides svc(I.Echo); returns "args+<op>" marker
///  - "test.forwarder": provides svc(I.Echo), requires next(I.Echo);
///                      forwards every call to `next`
///  - "test.optional":  provides svc(I.Echo), optional reference maybe(I.Echo)
///  - "test.other":     provides svc(I.Other) — interface-mismatch fodder
inline ComponentRegistry make_test_registry() {
  ComponentRegistry registry;

  registry.register_type(LambdaComponent::make_type(
      "test.echo", {{"svc", "I.Echo"}}, {},
      [](const std::string&, const std::string& op, const Value& args) {
        Value out = Value::map();
        out.set("op", op).set("args", args);
        return out;
      }));

  registry.register_type(LambdaComponent::make_type(
      "test.upper", {{"svc", "I.Echo"}}, {},
      [](const std::string&, const std::string& op, const Value&) {
        return Value("upper:" + op);
      }));

  {
    auto info = LambdaComponent::make_type(
        "test.other", {{"svc", "I.Other"}}, {},
        [](const std::string&, const std::string&, const Value&) {
          return Value{};
        });
    registry.register_type(std::move(info));
  }

  return registry;
}

/// A forwarder implemented as a real subclass so it can use call().
class Forwarder : public Component {
 public:
  static ComponentTypeInfo type_info() {
    ComponentTypeInfo info;
    info.type_name = "test.forwarder";
    info.services = {{"svc", "I.Echo"}};
    info.references = {{"next", "I.Echo"}};
    info.factory = [] { return std::make_unique<Forwarder>(); };
    return info;
  }

 protected:
  Value on_invoke(const std::string&, const std::string& op,
                  const Value& args) override {
    return call("next", op, args);
  }
};

/// Component with an optional reference; reports whether it is wired.
class MaybeCaller : public Component {
 public:
  static ComponentTypeInfo type_info() {
    ComponentTypeInfo info;
    info.type_name = "test.optional";
    info.services = {{"svc", "I.Echo"}};
    info.references = {{"maybe", "I.Echo", /*required=*/false}};
    info.factory = [] { return std::make_unique<MaybeCaller>(); };
    return info;
  }

 protected:
  Value on_invoke(const std::string&, const std::string& op,
                  const Value& args) override {
    if (wired("maybe")) return call("maybe", op, args);
    return Value("unwired");
  }
};

/// Component that counts lifecycle hook invocations.
class LifecycleSpy : public Component {
 public:
  static int starts;
  static int stops;
  static int property_changes;

  static ComponentTypeInfo type_info() {
    ComponentTypeInfo info;
    info.type_name = "test.spy";
    info.services = {{"svc", "I.Echo"}};
    info.default_properties.set("mode", "default");
    info.factory = [] { return std::make_unique<LifecycleSpy>(); };
    return info;
  }

  static void reset() { starts = stops = property_changes = 0; }

 protected:
  Value on_invoke(const std::string&, const std::string&, const Value&) override {
    return Value{};
  }
  void on_start() override { ++starts; }
  void on_stop() override { ++stops; }
  void on_property_changed(const std::string&) override { ++property_changes; }
};

inline int LifecycleSpy::starts = 0;
inline int LifecycleSpy::stops = 0;
inline int LifecycleSpy::property_changes = 0;

inline ComponentRegistry make_full_registry() {
  ComponentRegistry registry = make_test_registry();
  registry.register_type(Forwarder::type_info());
  registry.register_type(MaybeCaller::type_info());
  registry.register_type(LifecycleSpy::type_info());
  return registry;
}

}  // namespace rcs::comp::testing
