#include "rcs/component/registry.hpp"

#include <gtest/gtest.h>

#include "rcs/component/component.hpp"
#include "test_types.hpp"

namespace rcs::comp {
namespace {

TEST(Registry, RegisterAndLookup) {
  ComponentRegistry registry = testing::make_test_registry();
  EXPECT_TRUE(registry.has("test.echo"));
  EXPECT_FALSE(registry.has("missing"));
  const auto& info = registry.info("test.echo");
  EXPECT_EQ(info.type_name, "test.echo");
  ASSERT_EQ(info.services.size(), 1u);
  EXPECT_EQ(info.services[0].interface_name, "I.Echo");
}

TEST(Registry, InfoOnUnknownTypeThrows) {
  ComponentRegistry registry;
  EXPECT_THROW((void)registry.info("ghost"), ComponentError);
  EXPECT_THROW((void)registry.create("ghost"), ComponentError);
}

TEST(Registry, CreateInstantiatesFreshComponents) {
  ComponentRegistry registry = testing::make_test_registry();
  auto a = registry.create("test.echo");
  auto b = registry.create("test.echo");
  EXPECT_NE(a.get(), b.get());
}

TEST(Registry, TypeNamesAreSorted) {
  ComponentRegistry registry = testing::make_test_registry();
  const auto names = registry.type_names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(names.size(), 3u);
}

TEST(Registry, ReregistrationIsIdempotentFirstWins) {
  ComponentRegistry registry;
  auto info = LambdaComponent::make_type(
      "dup", {{"svc", "I.A"}}, {},
      [](const std::string&, const std::string&, const Value&) { return Value(1); });
  registry.register_type(info);
  auto info2 = LambdaComponent::make_type(
      "dup", {{"svc", "I.B"}}, {},
      [](const std::string&, const std::string&, const Value&) { return Value(2); });
  registry.register_type(info2);
  EXPECT_EQ(registry.info("dup").services[0].interface_name, "I.A");
}

TEST(Registry, RejectsEmptyNameOrMissingFactory) {
  ComponentRegistry registry;
  ComponentTypeInfo no_name;
  no_name.factory = [] { return std::unique_ptr<Component>{}; };
  EXPECT_THROW(registry.register_type(no_name), LogicError);

  ComponentTypeInfo no_factory;
  no_factory.type_name = "x";
  EXPECT_THROW(registry.register_type(no_factory), LogicError);
}

TEST(Registry, PortLookupHelpers) {
  ComponentRegistry registry = testing::make_full_registry();
  const auto& info = registry.info("test.forwarder");
  ASSERT_NE(info.find_service("svc"), nullptr);
  EXPECT_EQ(info.find_service("nope"), nullptr);
  ASSERT_NE(info.find_reference("next"), nullptr);
  EXPECT_TRUE(info.find_reference("next")->required);
  EXPECT_EQ(info.find_reference("nope"), nullptr);
}

TEST(Registry, GlobalInstanceIsSingleton) {
  EXPECT_EQ(&ComponentRegistry::instance(), &ComponentRegistry::instance());
}

}  // namespace
}  // namespace rcs::comp
