// Throughput–latency sweep harness: the knee exists, moves with the
// provisioned resources, and the emitted curve is bit-deterministic.
#include <gtest/gtest.h>

#include "rcs/load/sweep.hpp"

namespace rcs::load::testing {
namespace {

SweepOptions base_options() {
  SweepOptions options;
  options.seed = 9;
  options.clients = 10;
  options.rps_from = 60;
  options.rps_to = 300;
  options.steps = 4;  // offered: 60, 140, 220, 300
  options.warmup = sim::kSecond;
  options.window = 3 * sim::kSecond;
  return options;
}

TEST(Sweep, RampFindsTheCpuKnee) {
  // app.kvstore costs 5 ms of reference CPU per request, so a serialized
  // replica at speed 1.0 caps at 200 req/s: the ramp must stay clean below
  // that and knee above it.
  const auto result = run_sweep(base_options());
  ASSERT_EQ(result.points.size(), 4u);
  ASSERT_GE(result.knee_index, 2) << "60 and 140 rps are below capacity";
  EXPECT_NEAR(result.points[0].achieved_rps, 60.0, 12.0);
  const auto& knee_point =
      result.points[static_cast<std::size_t>(result.knee_index)];
  EXPECT_LT(knee_point.achieved_rps, 215.0) << "goodput capped by the CPU";
  EXPECT_GT(knee_point.mean_ms, result.points[0].mean_ms)
      << "past the knee the latency must have inflated";
}

TEST(Sweep, KneeShiftsDownWhenCpuIsCut) {
  auto options = base_options();
  const auto reference = run_sweep(options);
  options.cpu_speed = 0.5;  // capacity halves: 100 req/s
  const auto degraded = run_sweep(options);
  ASSERT_GE(reference.knee_index, 0);
  ASSERT_GE(degraded.knee_index, 0);
  EXPECT_LT(degraded.knee_index, reference.knee_index)
      << "half the CPU must knee at a lower offered rate";
  EXPECT_LT(degraded.points.back().achieved_rps,
            reference.points.back().achieved_rps);
}

TEST(Sweep, NarrowLinkSaturatesTheReplicaChannel) {
  // Full-state PBR moves ~6.7 KB per request between replicas, so 200 req/s
  // offers ~1.3 MB/s of checkpoint traffic. The 12.5 MB/s default link
  // absorbs that; a 1 MB/s link cannot, and unacked checkpoints retransmit,
  // so the sender-side byte meter races far past the physical capacity.
  // That runaway is precisely the signal MonitoringEngine's saturation
  // trigger keys on — the sweep must expose it as a measurement.
  auto options = base_options();
  options.delta_checkpoint = false;
  options.steps = 1;
  options.rps_from = options.rps_to = 200;
  const auto fat = run_sweep(options);
  options.replica_bandwidth_bps = 1e6;
  const auto thin = run_sweep(options);
  ASSERT_EQ(fat.points.size(), 1u);
  ASSERT_EQ(thin.points.size(), 1u);
  EXPECT_LT(fat.points[0].link_bytes_per_s, 0.2 * 12.5e6)
      << "the fat link carries the checkpoint stream with room to spare";
  EXPECT_GT(thin.points[0].link_bytes_per_s, 2.0 * 1e6)
      << "offered bytes (sender-side meter) must overshoot the narrow pipe";
}

TEST(Sweep, SameSeedEmitsByteIdenticalJson) {
  auto options = base_options();
  options.steps = 2;
  options.rps_to = 140;  // stay under the knee: cheap and still meaningful
  const auto a = run_sweep(options);
  const auto b = run_sweep(options);
  EXPECT_EQ(a.to_json_lines(), b.to_json_lines());
  EXPECT_FALSE(a.to_json_lines().empty());

  options.seed = 10;
  const auto c = run_sweep(options);
  EXPECT_NE(a.to_json_lines(), c.to_json_lines());
}

TEST(Sweep, DeltaCheckpointingSlashesReplicaTraffic) {
  auto options = base_options();
  options.steps = 1;
  options.rps_from = options.rps_to = 100;
  const auto delta = run_sweep(options);
  options.delta_checkpoint = false;
  const auto full = run_sweep(options);
  ASSERT_EQ(delta.points.size(), 1u);
  ASSERT_EQ(full.points.size(), 1u);
  EXPECT_LT(delta.points[0].link_bytes_per_s,
            0.25 * full.points[0].link_bytes_per_s)
      << "per-request deltas vs full state: at least 4x traffic reduction";
}

}  // namespace
}  // namespace rcs::load::testing
