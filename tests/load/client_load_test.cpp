// ftm::Client under sustained concurrent load: retransmission determinism,
// pending-map hygiene, and failover behaviour when the preferred replica is
// saturated. Complements tests/ftm/client_backoff_test.cpp, which covers the
// single-client backoff policy in isolation.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "rcs/ftm/client.hpp"
#include "rcs/ftm/interfaces.hpp"
#include "rcs/sim/simulation.hpp"

namespace rcs::load::testing {
namespace {

using ftm::Client;

void install_echo_server(sim::Host& server) {
  server.register_handler(ftm::msg::kRequest, [&server](const sim::Message& m) {
    Value reply = Value::map();
    reply.set("id", m.payload->at("id"))
        .set("result", Value::map().set("echo", m.payload->at("request")));
    server.send(HostId{static_cast<std::uint32_t>(
                    m.payload->at("client").as_int())},
                ftm::msg::kReply, std::move(reply));
  });
}

/// One (re)transmission as the observer saw it.
struct Transmit {
  sim::Time at;
  std::uint64_t client;
  std::uint64_t id;
  int attempt;
  std::uint32_t target;

  auto operator<=>(const Transmit&) const = default;
};

/// N clients hammering one lossy echo server; returns the full transmit
/// timeline (including every backoff-jittered retry).
std::vector<Transmit> lossy_run(std::uint64_t seed) {
  sim::Simulation sim(seed);
  sim::Host& server = sim.add_host("server");
  install_echo_server(server);

  Client::Options options;
  options.timeout = 100 * sim::kMillisecond;
  options.max_attempts = 12;
  options.backoff_jitter = 0.2;

  std::vector<Transmit> transmits;
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 6; ++i) {
    sim::Host& host = sim.add_host("c" + std::to_string(i));
    sim.network().link(host.id(), server.id()).drop_rate = 0.25;
    auto client = std::make_unique<Client>(
        host, std::vector<HostId>{server.id()}, options);
    const std::uint64_t tag = host.id().value();
    Client::Observer observer;
    observer.on_transmit = [&transmits, &sim, tag](std::uint64_t id,
                                                   int attempt, HostId target) {
      transmits.push_back({sim.now(), tag, id, attempt, target.value()});
    };
    client->set_observer(std::move(observer));
    clients.push_back(std::move(client));
  }

  // Sustained load: every client fires a request every 50 ms for 2 s, far
  // more in flight than the drop-free case would ever queue.
  for (int burst = 0; burst < 40; ++burst) {
    sim.schedule_at(burst * 50 * sim::kMillisecond, [&clients] {
      for (auto& client : clients) client->send(Value::map().set("op", "ping"));
    });
  }
  sim.run_for(20 * sim::kSecond);

  std::uint64_t outstanding = 0;
  for (auto& client : clients) outstanding += client->outstanding();
  EXPECT_EQ(outstanding, 0u) << "every request must resolve eventually";
  return transmits;
}

TEST(ClientLoad, BackoffJitterTimelineIsSeedDeterministic) {
  const auto a = lossy_run(101);
  const auto b = lossy_run(101);
  ASSERT_GT(a.size(), 240u) << "the drop rate must force real retransmissions";
  EXPECT_EQ(a, b) << "same seed: byte-identical retry timeline, jitter included";

  const auto c = lossy_run(102);
  EXPECT_NE(a, c) << "different seed: the jitter must actually vary";
}

TEST(ClientLoad, GiveUpCleansThePendingMap) {
  sim::Simulation sim(7);
  sim::Host& server = sim.add_host("server");
  install_echo_server(server);
  sim::Host& host = sim.add_host("client");

  Client::Options options;
  options.timeout = 50 * sim::kMillisecond;
  options.max_attempts = 3;
  Client client(host, {server.id()}, options);

  server.crash();  // fail-silent: every request will exhaust its attempts
  int timeouts = 0;
  for (int i = 0; i < 10; ++i) {
    client.send(Value::map().set("op", "ping"), [&timeouts](const Value& r) {
      if (r.has("error")) ++timeouts;
    });
  }
  sim.run_for(30 * sim::kSecond);
  EXPECT_EQ(timeouts, 10) << "the callback fires exactly once per request";
  EXPECT_EQ(client.stats().gave_up, 10u);
  EXPECT_EQ(client.outstanding(), 0u)
      << "gave-up requests must leave no pending-map residue";

  // The client is still usable: revive the server and complete a request.
  server.restart();
  install_echo_server(server);
  bool done = false;
  client.send(Value::map().set("op", "ping"),
              [&done](const Value& r) { done = !r.has("error"); });
  sim.run_for(10 * sim::kSecond);
  EXPECT_TRUE(done);
}

TEST(ClientLoad, FailoverSpreadsAttemptsOffTheSaturatedPreferredReplica) {
  sim::Simulation sim(13);
  sim::Host& slow = sim.add_host("slow");
  sim::Host& fast = sim.add_host("fast");
  install_echo_server(slow);
  install_echo_server(fast);
  sim::Host& host = sim.add_host("client");
  // The preferred replica's link is past its knee: a reply takes seconds.
  sim.network().link(host.id(), slow.id()).latency = 3 * sim::kSecond;
  sim.network().link(host.id(), fast.id()).latency = sim::kMillisecond;

  Client::Options options;
  options.timeout = 200 * sim::kMillisecond;
  options.max_attempts = 8;
  Client client(host, {slow.id(), fast.id()}, options);

  std::map<std::uint32_t, int> attempts_by_target;
  Client::Observer observer;
  observer.on_transmit = [&attempts_by_target](std::uint64_t, int,
                                               HostId target) {
    ++attempts_by_target[target.value()];
  };
  client.set_observer(std::move(observer));

  int ok = 0;
  for (int i = 0; i < 30; ++i) {
    sim.schedule_at(i * 100 * sim::kMillisecond, [&client, &ok] {
      client.send(Value::map().set("op", "ping"), [&ok](const Value& r) {
        if (!r.has("error")) ++ok;
      });
    });
  }
  sim.run_for(60 * sim::kSecond);

  EXPECT_EQ(ok, 30) << "every request completes via the healthy replica";
  EXPECT_EQ(client.stats().gave_up, 0u);
  EXPECT_GT(attempts_by_target[fast.id().value()], 0)
      << "failover must actually rotate to the fallback";
  // Fairness: the saturated preferred replica must not monopolize the
  // retries — after the first timeout each request moves on, so the
  // fallback sees at least as many attempts as the sink.
  EXPECT_GE(attempts_by_target[fast.id().value()],
            attempts_by_target[slow.id().value()] / 2)
      << "attempts must spread across the group, not pile onto the sink";
}

}  // namespace
}  // namespace rcs::load::testing
