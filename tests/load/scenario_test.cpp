// End-to-end closed loop: fleet traffic alone must saturate the replica
// link, fire the monitoring trigger, force a mandatory differential
// transition off PBR mid-load, and leave a history that satisfies every
// checker invariant. This is the repo's single strongest statement that the
// adaptation machinery works against measured load, not injected triggers.
#include <gtest/gtest.h>

#include "rcs/load/scenario.hpp"

namespace rcs::load::testing {
namespace {

TEST(AdaptScenario, FleetTrafficDrivesAMandatoryTransition) {
  AdaptScenarioOptions options;
  const auto result = run_adapt_scenario(options);

  ASSERT_TRUE(result.triggered)
      << "the offered load must trip kLinkSaturated on its own";
  EXPECT_GT(result.trigger_at, 0);
  ASSERT_TRUE(result.adapted) << "PBR must fail viability at the measured rate";
  EXPECT_EQ(result.adapted_from, "PBR");
  EXPECT_NE(result.adapted_to, "PBR");
  EXPECT_GE(result.adapted_at, result.trigger_at);

  // The trigger carried a *measured* rate in the right ballpark of the
  // offered 150 rps — not a stale or primed-to-zero estimate.
  ASSERT_FALSE(result.triggers.empty());
  EXPECT_GT(result.triggers.front().measured, 100.0);

  // Service stayed correct across the switch.
  EXPECT_TRUE(result.report.ok()) << result.report.to_string();
  EXPECT_EQ(result.totals.gave_up, 0u);
  EXPECT_GT(result.totals.ok, 0u);
  EXPECT_GT(result.final_counter, 0);
  EXPECT_TRUE(result.passed);
}

TEST(AdaptScenario, SameSeedProducesTheSameTrace) {
  AdaptScenarioOptions options;
  options.clients = 20;
  options.offered_rps = 140.0;
  const auto a = run_adapt_scenario(options);
  const auto b = run_adapt_scenario(options);
  EXPECT_EQ(a.trace, b.trace) << "the scenario is a deterministic experiment";
  EXPECT_FALSE(a.trace.empty());
  EXPECT_EQ(a.final_counter, b.final_counter);
}

TEST(AdaptScenario, ComfortableBandwidthNeverTriggers) {
  // Control experiment: with a fat replica link the same traffic must NOT
  // fire the trigger — proving the positive case above measures saturation,
  // not a hair-trigger threshold.
  AdaptScenarioOptions options;
  options.clients = 20;
  options.offered_rps = 100.0;
  options.replica_bandwidth_bps = 12.5e6;
  options.horizon = 15 * sim::kSecond;
  const auto result = run_adapt_scenario(options);
  EXPECT_FALSE(result.triggered);
  EXPECT_FALSE(result.adapted);
  // The scenario folds its own expectations (trigger fired, transition ran)
  // into the report, so here exactly those two lines fail — what matters is
  // that no *history* invariant broke under the comfortable provisioning.
  EXPECT_EQ(result.report.violations.size(), 2u) << result.report.to_string();
  EXPECT_EQ(result.totals.gave_up, 0u);
}

}  // namespace
}  // namespace rcs::load::testing
