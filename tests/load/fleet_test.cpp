// ClientFleet: many concurrent ftm::Clients against a ResilientSystem.
#include <gtest/gtest.h>

#include "rcs/ftm/config.hpp"
#include "rcs/load/fleet.hpp"

namespace rcs::load::testing {
namespace {

core::SystemOptions quiet_options(std::uint64_t seed = 5) {
  core::SystemOptions options;
  options.seed = seed;
  options.start_monitoring = false;
  return options;
}

struct FleetRun {
  ClientFleet::Totals totals;
  std::vector<ftm::HistoryRecord> history;
};

FleetRun run_fleet(std::uint64_t seed, sim::Duration horizon) {
  core::ResilientSystem system(quiet_options(seed));
  (void)system.deploy_and_wait(ftm::FtmConfig::pbr());
  FleetOptions options;
  options.clients = 8;
  options.seed = seed;
  options.record_history = true;
  ClientFleet fleet(system, options, make_process("open", 5.0));
  fleet.start();
  system.sim().run_for(horizon);
  fleet.stop();
  // Drain: outstanding requests finish, no new ones start.
  const sim::Time deadline = system.sim().now() + 30 * sim::kSecond;
  while (fleet.outstanding() > 0 && system.sim().now() < deadline) {
    if (system.sim().loop().empty()) break;
    system.sim().loop().step();
  }
  return {fleet.totals(), fleet.merged_history()};
}

TEST(ClientFleet, DrivesTrafficAndDrainsCleanly) {
  const auto run = run_fleet(5, 5 * sim::kSecond);
  // 8 clients x 5/s x 5s = ~200 offered.
  EXPECT_GT(run.totals.sent, 120u);
  EXPECT_EQ(run.totals.ok, run.totals.sent) << "healthy system: every request ok";
  EXPECT_EQ(run.totals.gave_up, 0u);
  EXPECT_EQ(run.totals.errors, 0u);
  EXPECT_EQ(run.totals.latency_count, run.totals.ok);
  EXPECT_EQ(run.history.size(), run.totals.sent)
      << "one history record per request across the whole fleet";
}

TEST(ClientFleet, SameSeedIsBitReproducible) {
  const auto a = run_fleet(21, 3 * sim::kSecond);
  const auto b = run_fleet(21, 3 * sim::kSecond);
  EXPECT_EQ(a.totals.sent, b.totals.sent);
  EXPECT_EQ(a.totals.ok, b.totals.ok);
  EXPECT_EQ(a.totals.retries, b.totals.retries);
  EXPECT_EQ(a.totals.latency_total, b.totals.latency_total);
  ASSERT_EQ(a.history.size(), b.history.size());
  for (std::size_t i = 0; i < a.history.size(); ++i) {
    EXPECT_EQ(a.history[i].id, b.history[i].id);
    EXPECT_EQ(a.history[i].op, b.history[i].op);
    EXPECT_EQ(a.history[i].sent, b.history[i].sent);
    EXPECT_EQ(a.history[i].completed, b.history[i].completed);
  }
}

TEST(ClientFleet, DifferentSeedsDiverge) {
  const auto a = run_fleet(31, 3 * sim::kSecond);
  const auto b = run_fleet(32, 3 * sim::kSecond);
  EXPECT_NE(a.totals.latency_total, b.totals.latency_total);
}

TEST(ClientFleet, MergedHistoryIsSortedBySendTime) {
  const auto run = run_fleet(5, 3 * sim::kSecond);
  ASSERT_GT(run.history.size(), 10u);
  for (std::size_t i = 1; i < run.history.size(); ++i) {
    EXPECT_LE(run.history[i - 1].sent, run.history[i].sent);
  }
}

TEST(ClientFleet, WindowsMeasureDeltasNotTotals) {
  core::ResilientSystem system(quiet_options());
  (void)system.deploy_and_wait(ftm::FtmConfig::pbr());
  FleetOptions options;
  options.clients = 4;
  options.seed = 5;
  ClientFleet fleet(system, options, make_process("open", 10.0));
  fleet.start();
  system.sim().run_for(2 * sim::kSecond);

  fleet.begin_window();
  system.sim().run_for(2 * sim::kSecond);
  const auto window = fleet.window();
  EXPECT_GT(window.delta.sent, 0u);
  EXPECT_LT(window.delta.sent, fleet.totals().sent)
      << "the window must exclude traffic before begin_window()";
  EXPECT_EQ(window.seen, window.delta.latency_count);
  EXPECT_GT(window.mean_ms(), 0.0);
  EXPECT_GE(window.quantile_ms(0.99), window.quantile_ms(0.50));
  fleet.stop();
}

TEST(ClientFleet, SetRateChangesTheOfferedLoad) {
  core::ResilientSystem system(quiet_options());
  (void)system.deploy_and_wait(ftm::FtmConfig::pbr());
  FleetOptions options;
  options.clients = 4;
  options.seed = 5;
  ClientFleet fleet(system, options, make_process("open", 2.0));
  fleet.start();
  fleet.begin_window();
  system.sim().run_for(4 * sim::kSecond);
  const auto slow = fleet.window();

  fleet.set_rate(20.0);
  fleet.begin_window();
  system.sim().run_for(4 * sim::kSecond);
  const auto fast = fleet.window();
  fleet.stop();

  EXPECT_GT(fast.delta.sent, 5 * slow.delta.sent)
      << "a 10x rate retarget must show up in the offered load";
}

TEST(ClientFleet, ClosedLoopNeverExceedsOneOutstandingPerClient) {
  core::ResilientSystem system(quiet_options());
  (void)system.deploy_and_wait(ftm::FtmConfig::pbr());
  FleetOptions options;
  options.clients = 6;
  options.seed = 5;
  ClientFleet fleet(system, options, make_process("closed", 50.0));
  fleet.start();
  const sim::Time deadline = system.sim().now() + 3 * sim::kSecond;
  while (system.sim().now() < deadline && !system.sim().loop().empty()) {
    system.sim().loop().step();
    EXPECT_LE(fleet.outstanding(), options.clients)
        << "closed loop: at most one in-flight request per client";
  }
  fleet.stop();
}

TEST(ClientFleet, RequestBudgetStopsTheRun) {
  core::ResilientSystem system(quiet_options());
  (void)system.deploy_and_wait(ftm::FtmConfig::pbr());
  FleetOptions options;
  options.clients = 3;
  options.seed = 5;
  options.max_requests_per_client = 7;
  ClientFleet fleet(system, options, make_process("open", 100.0));
  fleet.start();
  system.sim().run_for(10 * sim::kSecond);
  EXPECT_EQ(fleet.totals().sent, 21u) << "3 clients x 7 requests each";
}

TEST(ClientFleet, PerClassLatencyLandsInTheMetricsRegistry) {
  core::ResilientSystem system(quiet_options());
  (void)system.deploy_and_wait(ftm::FtmConfig::pbr());
  FleetOptions options;
  options.clients = 4;
  options.seed = 5;
  ClientFleet fleet(system, options, make_process("open", 10.0));
  fleet.start();
  system.sim().run_for(5 * sim::kSecond);
  fleet.stop();

  auto& metrics = system.sim().metrics();
  const auto incr = metrics.histogram("load.latency_us.incr").count();
  const auto get = metrics.histogram("load.latency_us.get").count();
  const auto put = metrics.histogram("load.latency_us.put").count();
  EXPECT_GT(incr, get) << "the default mix is incr-heavy";
  EXPECT_GT(get, 0u);
  EXPECT_GT(put, 0u);
  EXPECT_EQ(incr + get + put, fleet.totals().latency_count);
}

}  // namespace
}  // namespace rcs::load::testing
