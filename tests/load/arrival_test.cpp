// Arrival processes: deterministic, rate-faithful inter-arrival schedules.
#include <gtest/gtest.h>

#include "rcs/common/error.hpp"
#include "rcs/load/arrival.hpp"

namespace rcs::load::testing {
namespace {

/// Mean of `n` gaps in virtual seconds.
double mean_gap_s(ArrivalProcess& process, Rng& rng, int n) {
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    const auto gap = process.next_gap(rng);
    EXPECT_TRUE(gap.has_value());
    total += static_cast<double>(*gap) / sim::kSecond;
  }
  return total / n;
}

TEST(Arrival, OpenPoissonMatchesTheConfiguredRate) {
  OpenPoisson process(20.0);
  Rng rng(42);
  // Law of large numbers: the empirical mean gap approaches 1/rate = 50 ms.
  EXPECT_NEAR(mean_gap_s(process, rng, 4000), 0.05, 0.005);
}

TEST(Arrival, SameSeedSameSchedule) {
  const auto draw = [](std::uint64_t seed) {
    OpenPoisson process(50.0);
    Rng rng(seed);
    std::vector<sim::Duration> gaps;
    for (int i = 0; i < 100; ++i) gaps.push_back(*process.next_gap(rng));
    return gaps;
  };
  EXPECT_EQ(draw(7), draw(7)) << "the offered schedule must be reproducible";
  EXPECT_NE(draw(7), draw(8));
}

TEST(Arrival, SetRateRetargetsOpenPoisson) {
  OpenPoisson process(10.0);
  Rng rng(1);
  process.set_rate(100.0);
  EXPECT_NEAR(mean_gap_s(process, rng, 4000), 0.01, 0.002);
}

TEST(Arrival, GapsNeverRoundToZero) {
  // An absurd rate must still advance virtual time: a zero gap would let a
  // client fire infinitely often at one instant.
  OpenPoisson process(1e9);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(*process.next_gap(rng), 1);
}

TEST(Arrival, ClosedLoopDeclaresItself) {
  ClosedLoopThink closed(10.0);
  OpenPoisson open(10.0);
  EXPECT_TRUE(closed.closed_loop());
  EXPECT_FALSE(open.closed_loop());
  Rng rng(9);
  EXPECT_NEAR(mean_gap_s(closed, rng, 4000), 0.1, 0.01)
      << "think time is exponential with mean 1/rate";
}

TEST(Arrival, BurstyOnOffKeepsTheLongRunAverage) {
  // 4x bursts with matching silences: the long-run mean rate stays at the
  // configured 20/s even though the instantaneous rate alternates.
  BurstyOnOff process(20.0, 4.0, 2 * sim::kSecond);
  Rng rng(11);
  double virtual_s = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    virtual_s += static_cast<double>(*process.next_gap(rng)) / sim::kSecond;
  }
  EXPECT_NEAR(n / virtual_s, 20.0, 3.0);
}

TEST(Arrival, TraceReplayExhaustsAndRescales) {
  TraceReplay process({100, 200, 300, 400});
  Rng rng(1);
  EXPECT_EQ(*process.next_gap(rng), 100);
  // Rescale the remaining schedule: mean gap 250 us = 4000/s; retarget to
  // 8000/s and every remaining gap halves.
  process.set_rate(8000.0);
  EXPECT_EQ(*process.next_gap(rng), 100);
  EXPECT_EQ(*process.next_gap(rng), 150);
  EXPECT_EQ(*process.next_gap(rng), 200);
  EXPECT_FALSE(process.next_gap(rng).has_value()) << "schedule ran out";
}

TEST(Arrival, NamedFactoriesAndUnknownKind) {
  Rng rng(5);
  EXPECT_FALSE(make_process("open", 10.0)(0)->closed_loop());
  EXPECT_TRUE(make_process("closed", 10.0)(0)->closed_loop());
  EXPECT_TRUE(make_process("bursty", 10.0)(0)->next_gap(rng).has_value());
  EXPECT_THROW(make_process("fractal", 10.0), Error);
}

}  // namespace
}  // namespace rcs::load::testing
