// End-to-end chaos campaign properties: determinism of whole runs, seed
// replay, differential transitions under fire, and shrink on a broken
// oracle. Campaigns run real ResilientSystem stacks, so each test keeps
// its campaign count small.
#include <gtest/gtest.h>

#include "rcs/core/chaos_campaign.hpp"

namespace rcs::core::testing {
namespace {

ChaosCampaignOptions quick(std::uint64_t seed, const std::string& ftm,
                           bool delta) {
  ChaosCampaignOptions options;
  options.seed = seed;
  options.ftm = ftm;
  options.delta_checkpoint = delta;
  options.requests = 18;
  options.chaos_horizon = 8 * sim::kSecond;
  options.chaos_events = 7;
  return options;
}

TEST(ChaosCampaign, SameSeedByteIdenticalTraceAndVerdict) {
  const auto options = quick(4, "PBR", true);
  const auto first = run_campaign(options);
  const auto second = run_campaign(options);
  EXPECT_EQ(first.passed, second.passed);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.final_counter, second.final_counter);
  EXPECT_TRUE(first.passed) << first.report.to_string();
}

TEST(ChaosCampaign, ReplayWithGeneratedScheduleIsIdentical) {
  const auto options = quick(6, "LFR", false);
  const auto direct = run_campaign(options);
  const auto replayed = replay_campaign(options, direct.schedule);
  EXPECT_EQ(direct.trace, replayed.trace);
  EXPECT_EQ(direct.passed, replayed.passed);
}

TEST(ChaosCampaign, SweepAcrossFtmsHoldsInvariants) {
  for (const char* ftm : {"PBR", "LFR", "TR"}) {
    for (const bool delta : {true, false}) {
      const auto result = run_campaign(quick(2, ftm, delta));
      EXPECT_TRUE(result.passed)
          << result.label << ":\n"
          << result.report.to_string();
      EXPECT_GT(result.final_counter, 0);
    }
  }
}

TEST(ChaosCampaign, DifferentialTransitionUnderChaosPasses) {
  auto options = quick(3, "PBR", true);
  options.transition_to = "LFR";
  const auto result = run_campaign(options);
  EXPECT_TRUE(result.passed) << result.report.to_string();
  EXPECT_EQ(result.label, "PBR/delta->LFR");
  EXPECT_NE(result.trace.find("transition=ok"), std::string::npos);
}

TEST(ChaosCampaign, LabelsEncodeConfiguration) {
  const auto result = run_campaign(quick(2, "TR", false));
  EXPECT_EQ(result.label, "TR/full");
  EXPECT_EQ(result.seed, 2u);
  EXPECT_NE(result.trace.find("campaign seed=2"), std::string::npos);
}

TEST(ChaosCampaign, BrokenOracleFailsAndShrinksToMinimalTimeline) {
  // forbid_retries is an intentionally broken oracle: chaos makes client
  // retransmission inevitable, so the campaign must fail, and greedy
  // shrinking must find a strictly smaller timeline that still fails.
  auto options = quick(1, "PBR", true);
  options.forbid_retries = true;
  const auto result = run_campaign(options);
  ASSERT_FALSE(result.passed);
  ASSERT_GT(result.schedule.episode_count(), 1u);

  const auto shrunk = shrink_schedule(options, result.schedule);
  EXPECT_LT(shrunk.episode_count(), result.schedule.episode_count());
  EXPECT_TRUE(shrunk.shrunk());

  // The shrunk timeline still reproduces the failure on replay.
  const auto replayed = replay_campaign(options, shrunk);
  EXPECT_FALSE(replayed.passed);
}

}  // namespace
}  // namespace rcs::core::testing
