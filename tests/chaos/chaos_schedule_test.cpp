// ChaosSchedule generator properties: determinism, heal-before-deadline,
// fault-class scoping, split-brain safety caps, quiet zones, shrinking.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "rcs/sim/chaos.hpp"
#include "rcs/sim/fault_injector.hpp"
#include "rcs/sim/simulation.hpp"

namespace rcs::sim::testing {
namespace {

ChaosScheduleOptions base_options() {
  ChaosScheduleOptions options;
  options.replicas = 2;
  options.start = 1 * kSecond;
  options.heal_deadline = 15 * kSecond;
  options.events = 12;
  return options;
}

TEST(ChaosSchedule, SameSeedSameSchedule) {
  const auto a = ChaosSchedule::generate(42, base_options());
  const auto b = ChaosSchedule::generate(42, base_options());
  EXPECT_EQ(a.to_string(), b.to_string());
  EXPECT_GT(a.episode_count(), 0u);
}

TEST(ChaosSchedule, DifferentSeedsDiffer) {
  const auto a = ChaosSchedule::generate(1, base_options());
  const auto b = ChaosSchedule::generate(2, base_options());
  EXPECT_NE(a.to_string(), b.to_string());
}

TEST(ChaosSchedule, EveryWindowClosesBeforeTheHealDeadline) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    const auto schedule = ChaosSchedule::generate(seed, base_options());
    for (const auto& e : schedule.episodes()) {
      EXPECT_GE(e.at, base_options().start) << "seed " << seed;
      EXPECT_LE(e.at + e.duration, base_options().heal_deadline)
          << "seed " << seed;
    }
  }
}

TEST(ChaosSchedule, EpisodesAreSortedByTime) {
  const auto schedule = ChaosSchedule::generate(7, base_options());
  for (std::size_t i = 1; i < schedule.episode_count(); ++i) {
    EXPECT_LE(schedule.episodes()[i - 1].at, schedule.episodes()[i].at);
  }
}

TEST(ChaosSchedule, ScopingDisablesFaultClasses) {
  auto options = base_options();
  options.allow_crashes = false;
  options.allow_transients = false;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto schedule = ChaosSchedule::generate(seed, options);
    for (const auto& e : schedule.episodes()) {
      EXPECT_NE(e.kind, ChaosEpisodeKind::kCrashRestart) << "seed " << seed;
      EXPECT_NE(e.kind, ChaosEpisodeKind::kTransient) << "seed " << seed;
    }
  }
}

TEST(ChaosSchedule, ReplicaPairFaultsRespectSafetyCaps) {
  auto options = base_options();
  options.events = 40;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto schedule = ChaosSchedule::generate(seed, options);
    for (const auto& e : schedule.episodes()) {
      const bool replica_pair =
          e.a < options.replicas && e.b < options.replicas;
      if (!replica_pair) continue;
      if (e.kind == ChaosEpisodeKind::kPartition) {
        EXPECT_LE(e.duration, options.replica_partition_cap)
            << "seed " << seed << ": replica partition above the failure-"
            << "detector margin risks split-brain";
      }
      if (e.kind == ChaosEpisodeKind::kDegrade) {
        EXPECT_LE(e.degraded.drop_rate, options.replica_drop_cap);
        EXPECT_LE(e.degraded.latency, options.replica_latency_cap);
      }
    }
  }
}

TEST(ChaosSchedule, CrashWindowsNeverOverlapAndKeepGrace) {
  auto options = base_options();
  options.events = 30;
  options.heal_deadline = 40 * kSecond;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto schedule = ChaosSchedule::generate(seed, options);
    std::vector<std::pair<Time, Time>> crashes;
    for (const auto& e : schedule.episodes()) {
      if (e.kind == ChaosEpisodeKind::kCrashRestart) {
        crashes.emplace_back(e.at, e.at + e.duration);
      }
    }
    for (std::size_t i = 0; i < crashes.size(); ++i) {
      for (std::size_t j = i + 1; j < crashes.size(); ++j) {
        const auto& [b1, e1] = crashes[i];
        const auto& [b2, e2] = crashes[j];
        const bool disjoint_with_grace =
            e1 + options.crash_grace <= b2 || e2 + options.crash_grace <= b1;
        EXPECT_TRUE(disjoint_with_grace)
            << "seed " << seed << ": two replicas down (or rejoining) at once";
      }
    }
  }
}

TEST(ChaosSchedule, QuietZonesAreRespected) {
  auto options = base_options();
  options.events = 30;
  options.quiet.emplace_back(6 * kSecond, 9 * kSecond);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto schedule = ChaosSchedule::generate(seed, options);
    for (const auto& e : schedule.episodes()) {
      const Time begin = e.at;
      const Time end = e.at + e.duration + 1;
      const bool overlaps = begin < 9 * kSecond && 6 * kSecond < end;
      EXPECT_FALSE(overlaps) << "seed " << seed << ": episode at t=" << e.at
                             << " inside the quiet zone";
    }
  }
}

TEST(ChaosSchedule, SameLinkWindowsStayDisjoint) {
  auto options = base_options();
  options.events = 40;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto schedule = ChaosSchedule::generate(seed, options);
    std::map<std::pair<std::size_t, std::size_t>,
             std::vector<std::pair<Time, Time>>>
        windows;
    for (const auto& e : schedule.episodes()) {
      if (e.kind != ChaosEpisodeKind::kPartition &&
          e.kind != ChaosEpisodeKind::kDegrade) {
        continue;
      }
      auto& list = windows[{e.a, e.b}];
      for (const auto& [b, t] : list) {
        EXPECT_FALSE(e.at < t && b < e.at + e.duration)
            << "seed " << seed
            << ": overlapping windows on one link corrupt restore order";
      }
      list.emplace_back(e.at, e.at + e.duration);
    }
  }
}

TEST(ChaosSchedule, WithoutEpisodeRemovesExactlyOne) {
  const auto schedule = ChaosSchedule::generate(11, base_options());
  ASSERT_GE(schedule.episode_count(), 2u);
  const auto shrunk = schedule.without_episode(1);
  EXPECT_EQ(shrunk.episode_count(), schedule.episode_count() - 1);
  EXPECT_TRUE(shrunk.shrunk());
  EXPECT_FALSE(schedule.shrunk());
  EXPECT_EQ(shrunk.episodes()[0].at, schedule.episodes()[0].at);
  EXPECT_EQ(shrunk.episodes()[1].at, schedule.episodes()[2].at);
}

TEST(ChaosSchedule, ApplySchedulesEveryEpisodeDeterministically) {
  // Applying the same schedule to two fresh simulations produces the same
  // fault event sequence (observed via the injector's virtual-time events).
  const auto run = [] {
    Simulation sim(5);
    Host& r0 = sim.add_host("r0");
    Host& r1 = sim.add_host("r1");
    Host& cl = sim.add_host("cl");
    FaultInjector injector(sim);
    auto options = base_options();
    const auto schedule = ChaosSchedule::generate(33, options);
    schedule.apply(injector, {r0.id(), r1.id(), cl.id()});
    sim.run_for(30 * kSecond);
    return std::tuple{sim.now(), r0.alive(), r1.alive(),
                      sim.network().link(r0.id(), cl.id()).drop_rate,
                      sim.network().link(r0.id(), r1.id()).partitioned};
  };
  EXPECT_EQ(run(), run());
}

TEST(ChaosSchedule, OverlappingDegradeWindowsLeaveTheLinkPristine) {
  // The generator keeps same-link windows disjoint (see
  // SameLinkWindowsStayDisjoint above), but hand-written and shrunk
  // schedules may overlap them. The injector ref-counts per-link degrades,
  // so whatever the interleaving, the last window's close restores the
  // pre-chaos parameters — not a degraded snapshot taken mid-overlap.
  Simulation sim(6);
  Host& r0 = sim.add_host("r0");
  Host& r1 = sim.add_host("r1");
  FaultInjector injector(sim);
  auto& link = sim.network().link(r0.id(), r1.id());
  const Duration pristine_latency = link.latency;
  const double pristine_drop = link.drop_rate;

  LinkParams heavy = link;
  heavy.drop_rate = 0.9;
  heavy.latency = 50 * kMillisecond;
  LinkParams light = link;
  light.drop_rate = 0.2;
  // Three windows: [1s,4s) nests [2s,3s), and [3500ms,5s) straddles the
  // first window's close.
  injector.degrade_link_at(r0.id(), r1.id(), 1 * kSecond, 4 * kSecond, heavy);
  injector.degrade_link_at(r0.id(), r1.id(), 2 * kSecond, 3 * kSecond, light);
  injector.degrade_link_at(r0.id(), r1.id(), 3500 * kMillisecond, 5 * kSecond,
                           light);

  sim.run_until(4500 * kMillisecond);
  EXPECT_GT(sim.network().link(r0.id(), r1.id()).drop_rate, 0.0)
      << "a window is still open: the link must stay degraded";

  sim.run();
  const auto& after = sim.network().link(r0.id(), r1.id());
  EXPECT_EQ(after.drop_rate, pristine_drop);
  EXPECT_EQ(after.latency, pristine_latency);
}

TEST(ChaosSchedule, CanonicalTextRoundTripsKeyFields) {
  const auto schedule = ChaosSchedule::generate(9, base_options());
  const auto text = schedule.to_string();
  EXPECT_NE(text.find("chaos seed=9"), std::string::npos);
  EXPECT_NE(text.find("episodes="), std::string::npos);
  std::set<std::string> kinds;
  for (const auto& e : schedule.episodes()) kinds.insert(to_string(e.kind));
  for (const auto& kind : kinds) {
    EXPECT_NE(text.find(kind), std::string::npos) << kind;
  }
}

}  // namespace
}  // namespace rcs::sim::testing
