// Fault-simulation campaign properties: coverage determinism across rerun
// and replay, point scoping, and the per-point escalation paths — each
// point fired in isolation must be masked or escalated into a detected,
// invariant-clean recovery. Campaigns run real ResilientSystem stacks, so
// each scan keeps its seed budget small.
#include <gtest/gtest.h>

#include <string>

#include "rcs/core/chaos_campaign.hpp"

namespace rcs::core::testing {
namespace {

namespace fsim = rcs::fsim;

ChaosCampaignOptions quick(std::uint64_t seed, const std::string& ftm,
                           bool delta) {
  ChaosCampaignOptions options;
  options.seed = seed;
  options.ftm = ftm;
  options.delta_checkpoint = delta;
  options.requests = 18;
  options.chaos_horizon = 8 * sim::kSecond;
  options.chaos_events = 7;
  return options;
}

// Scan a few seeds until `point` fires at least once under a schedule that
// arms only that point (fsim_only). Every scanned campaign — firing or not —
// must hold the invariants; the returned result is the first firing one.
ChaosCampaignResult fire_in_isolation(fsim::Point point, const std::string& ftm,
                                      bool delta,
                                      const std::string& transition_to = "") {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    auto options = quick(seed, ftm, delta);
    options.transition_to = transition_to;
    options.fsim_only = true;
    options.fsim_points = {static_cast<int>(point)};
    const auto result = run_campaign(options);
    EXPECT_TRUE(result.passed)
        << fsim::to_string(point) << " seed " << seed << ":\n"
        << result.report.to_string();
    for (int other = 0; other < fsim::kPointCount; ++other) {
      if (other == static_cast<int>(point)) continue;
      EXPECT_EQ(result.fsim.fires_of(static_cast<fsim::Point>(other)), 0u)
          << "unscoped point fired: "
          << fsim::to_string(static_cast<fsim::Point>(other));
    }
    if (result.fsim.fires_of(point) > 0) return result;
  }
  ADD_FAILURE() << fsim::to_string(point) << " never fired in 12 seeds";
  return {};
}

TEST(FsimCampaign, CoverageIsByteIdenticalAcrossReruns) {
  const auto options = quick(4, "PBR", true);
  const auto first = run_campaign(options);
  const auto second = run_campaign(options);
  EXPECT_EQ(first.trace, second.trace);
  EXPECT_EQ(first.fsim.to_json(), second.fsim.to_json());
  EXPECT_TRUE(first.passed) << first.report.to_string();
  EXPECT_GT(first.fsim.pair_count(), 0u);
  EXPECT_NE(first.trace.find("fsim pairs="), std::string::npos);
}

TEST(FsimCampaign, ReplayReproducesTheExactCoverage) {
  const auto options = quick(6, "PBR", false);
  const auto direct = run_campaign(options);
  const auto replayed = replay_campaign(options, direct.schedule);
  EXPECT_EQ(direct.trace, replayed.trace);
  EXPECT_EQ(direct.fsim.to_json(), replayed.fsim.to_json());
}

TEST(FsimCampaign, DisablingFsimLeavesCoverageEmpty) {
  auto options = quick(4, "PBR", true);
  options.fsim = false;
  const auto result = run_campaign(options);
  EXPECT_TRUE(result.passed) << result.report.to_string();
  EXPECT_EQ(result.fsim.pair_count(), 0u);
  EXPECT_EQ(result.fsim.fire_total(), 0u);
}

TEST(FsimCampaign, CkptSerializeEscalatesThroughPeerRetry) {
  const auto result = fire_in_isolation(fsim::Point::kCkptSerialize, "PBR", true);
  EXPECT_GT(result.fsim.fires_of(fsim::Point::kCkptSerialize), 0u);
}

TEST(FsimCampaign, CkptApplyDeltaEscalatesThroughResync) {
  const auto result = fire_in_isolation(fsim::Point::kCkptApply, "PBR", true);
  EXPECT_GT(result.fsim.fires_of(fsim::Point::kCkptApply), 0u);
}

TEST(FsimCampaign, CkptApplyFullIsMaskedByRetransmission) {
  const auto result = fire_in_isolation(fsim::Point::kCkptApply, "PBR", false);
  EXPECT_GT(result.fsim.fires_of(fsim::Point::kCkptApply), 0u);
}

TEST(FsimCampaign, ReplylogAppendEvictionPreservesAtMostOnce) {
  const auto result =
      fire_in_isolation(fsim::Point::kReplylogAppend, "PBR", true);
  EXPECT_GT(result.fsim.fires_of(fsim::Point::kReplylogAppend), 0u);
}

TEST(FsimCampaign, TimerArmDegradationOnlyCostsLatency) {
  const auto result = fire_in_isolation(fsim::Point::kTimerArm, "PBR", true);
  EXPECT_GT(result.fsim.fires_of(fsim::Point::kTimerArm), 0u);
}

TEST(FsimCampaign, RepoFetchIsMaskedByEngineRetry) {
  const auto result =
      fire_in_isolation(fsim::Point::kRepoFetch, "PBR", true, "LFR");
  EXPECT_GT(result.fsim.fires_of(fsim::Point::kRepoFetch), 0u);
  EXPECT_NE(result.trace.find("transition=ok"), std::string::npos);
}

TEST(FsimCampaign, ScriptRollbackEscalatesToFailSilence) {
  const auto result =
      fire_in_isolation(fsim::Point::kScriptRollback, "PBR", true, "LFR");
  EXPECT_GT(result.fsim.fires_of(fsim::Point::kScriptRollback), 0u);
}

}  // namespace
}  // namespace rcs::core::testing
