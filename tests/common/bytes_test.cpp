#include "rcs/common/bytes.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "rcs/common/error.hpp"

namespace rcs {
namespace {

TEST(Bytes, PrimitiveRoundTrip) {
  ByteWriter w;
  w.write_u8(0xAB);
  w.write_u32(0xDEADBEEF);
  w.write_u64(0x0123456789ABCDEFULL);
  w.write_i64(-42);
  w.write_f64(3.14159);

  ByteReader r(w.buffer());
  EXPECT_EQ(r.read_u8(), 0xAB);
  EXPECT_EQ(r.read_u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.read_i64(), -42);
  EXPECT_DOUBLE_EQ(r.read_f64(), 3.14159);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, VarintSmallValuesAreOneByte) {
  ByteWriter w;
  w.write_varint(0);
  w.write_varint(127);
  EXPECT_EQ(w.size(), 2u);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.read_varint(), 0u);
  EXPECT_EQ(r.read_varint(), 127u);
}

TEST(Bytes, VarintBoundaries) {
  ByteWriter w;
  const std::uint64_t cases[] = {128, 16383, 16384,
                                 std::numeric_limits<std::uint64_t>::max()};
  for (auto v : cases) w.write_varint(v);
  ByteReader r(w.buffer());
  for (auto v : cases) EXPECT_EQ(r.read_varint(), v);
  EXPECT_TRUE(r.at_end());
}

TEST(Bytes, StringRoundTripIncludingEmbeddedNul) {
  ByteWriter w;
  const std::string s("a\0b", 3);
  w.write_string(s);
  w.write_string("");
  ByteReader r(w.buffer());
  EXPECT_EQ(r.read_string(), s);
  EXPECT_EQ(r.read_string(), "");
}

TEST(Bytes, BlobRoundTrip) {
  ByteWriter w;
  const Bytes blob{0, 1, 2, 255};
  w.write_bytes(blob);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.read_bytes(), blob);
}

TEST(Bytes, TruncatedReadThrows) {
  ByteWriter w;
  w.write_u32(7);
  Bytes truncated = w.buffer();
  truncated.pop_back();
  ByteReader r(truncated);
  EXPECT_THROW((void)r.read_u32(), ValueError);
}

TEST(Bytes, TruncatedStringThrows) {
  ByteWriter w;
  w.write_string("hello world");
  Bytes truncated = w.buffer();
  truncated.resize(4);
  ByteReader r(truncated);
  EXPECT_THROW((void)r.read_string(), ValueError);
}

TEST(Bytes, MalformedVarintOverflowThrows) {
  // 11 continuation bytes exceed the 64-bit range.
  Bytes bad(11, 0xFF);
  ByteReader r(bad);
  EXPECT_THROW((void)r.read_varint(), ValueError);
}

TEST(Bytes, RemainingTracksPosition) {
  ByteWriter w;
  w.write_u64(1);
  ByteReader r(w.buffer());
  EXPECT_EQ(r.remaining(), 8u);
  (void)r.read_u32();
  EXPECT_EQ(r.remaining(), 4u);
}

TEST(Bytes, Fnv1aIsStableAndSensitive) {
  const Bytes a{1, 2, 3};
  const Bytes b{1, 2, 4};
  EXPECT_EQ(fnv1a(a), fnv1a(a));
  EXPECT_NE(fnv1a(a), fnv1a(b));
  EXPECT_NE(fnv1a({}), fnv1a(a));
}

}  // namespace
}  // namespace rcs
