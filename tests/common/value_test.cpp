#include "rcs/common/value.hpp"

#include <gtest/gtest.h>

#include "rcs/common/error.hpp"

namespace rcs {
namespace {

TEST(Value, DefaultIsNull) {
  const Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), Value::Type::kNull);
  EXPECT_STREQ(v.type_name(), "null");
}

TEST(Value, BoolRoundTrip) {
  const Value v(true);
  EXPECT_TRUE(v.is_bool());
  EXPECT_TRUE(v.as_bool());
  EXPECT_FALSE(Value(false).as_bool());
}

TEST(Value, IntAccessors) {
  const Value v(std::int64_t{42});
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_number());
  EXPECT_EQ(v.as_int(), 42);
  EXPECT_DOUBLE_EQ(v.as_double(), 42.0);  // int widens to double
}

TEST(Value, IntFromPlainIntLiteral) {
  const Value v(7);
  EXPECT_TRUE(v.is_int());
  EXPECT_EQ(v.as_int(), 7);
}

TEST(Value, DoubleDoesNotNarrowToInt) {
  const Value v(3.5);
  EXPECT_TRUE(v.is_double());
  EXPECT_THROW((void)v.as_int(), ValueError);
}

TEST(Value, StringAccessors) {
  const Value v("hello");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.as_string(), "hello");
}

TEST(Value, TypeMismatchThrowsWithDiagnostics) {
  const Value v("text");
  try {
    (void)v.as_int();
    FAIL() << "expected ValueError";
  } catch (const ValueError& e) {
    EXPECT_NE(std::string(e.what()).find("expected int"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("string"), std::string::npos);
  }
}

TEST(Value, MapSetAndAt) {
  Value v;
  v.set("a", 1).set("b", "two");
  EXPECT_TRUE(v.is_map());
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_EQ(v.at("b").as_string(), "two");
  EXPECT_TRUE(v.has("a"));
  EXPECT_FALSE(v.has("missing"));
}

TEST(Value, MapAtMissingKeyThrows) {
  Value v = Value::map();
  EXPECT_THROW((void)v.at("nope"), ValueError);
}

TEST(Value, GetOrReturnsFallback) {
  Value v = Value::map();
  v.set("present", 5);
  EXPECT_EQ(v.get_or("present", 0).as_int(), 5);
  EXPECT_EQ(v.get_or("absent", 9).as_int(), 9);
}

TEST(Value, ListPushAndIndex) {
  Value v;
  v.push_back(1).push_back("x").push_back(true);
  EXPECT_TRUE(v.is_list());
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.at(0).as_int(), 1);
  EXPECT_EQ(v.at(1).as_string(), "x");
  EXPECT_TRUE(v.at(2).as_bool());
  EXPECT_THROW((void)v.at(3), ValueError);
}

TEST(Value, NestedStructure) {
  Value inner = Value::map();
  inner.set("x", 1.5);
  Value v = Value::map();
  v.set("inner", inner).set("list", Value(ValueList{Value(1), Value(2)}));
  EXPECT_DOUBLE_EQ(v.at("inner").at("x").as_double(), 1.5);
  EXPECT_EQ(v.at("list").at(1).as_int(), 2);
}

TEST(Value, EqualityIsDeep) {
  Value a = Value::map();
  a.set("k", Value(ValueList{Value(1), Value("s")}));
  Value b = Value::map();
  b.set("k", Value(ValueList{Value(1), Value("s")}));
  EXPECT_EQ(a, b);
  b.set("k2", 0);
  EXPECT_NE(a, b);
}

TEST(Value, EncodeDecodeRoundTripAllTypes) {
  Value v = Value::map();
  v.set("null", Value{});
  v.set("bool", true);
  v.set("int", std::int64_t{-123456789});
  v.set("double", 2.718281828);
  v.set("string", "héllo wörld");
  v.set("bytes", Bytes{0x00, 0xFF, 0x7E});
  v.set("list", Value(ValueList{Value(1), Value(ValueList{Value("nested")})}));
  Value inner = Value::map();
  inner.set("deep", Value(ValueMap{{"deeper", Value(7)}}));
  v.set("map", inner);

  const Bytes encoded = v.encode();
  const Value decoded = Value::decode(encoded);
  EXPECT_EQ(v, decoded);
}

TEST(Value, DecodeRejectsTrailingGarbage) {
  Bytes encoded = Value(1).encode();
  encoded.push_back(0x00);
  EXPECT_THROW((void)Value::decode(encoded), ValueError);
}

TEST(Value, DecodeRejectsBadTag) {
  const Bytes bad{0xEE};
  EXPECT_THROW((void)Value::decode(bad), ValueError);
}

TEST(Value, DecodeRejectsTruncation) {
  Bytes encoded = Value("a longer string payload").encode();
  encoded.resize(encoded.size() / 2);
  EXPECT_THROW((void)Value::decode(encoded), ValueError);
}

TEST(Value, EncodedSizeMatchesEncodeLength) {
  Value v = Value::map();
  v.set("k", Value(ValueList{Value(1), Value(2), Value(3)}));
  EXPECT_EQ(v.encoded_size(), v.encode().size());
}

TEST(Value, ToStringRendersJsonLike) {
  Value v = Value::map();
  v.set("n", 3).set("s", "x").set("b", true);
  EXPECT_EQ(v.to_string(), R"({"b":true,"n":3,"s":"x"})");
}

TEST(Value, ToStringRendersListAndNull) {
  Value v;
  v.push_back(Value{}).push_back(1.5);
  EXPECT_EQ(v.to_string(), "[null,1.5]");
}

TEST(Value, SizeOnScalarThrows) {
  EXPECT_THROW((void)Value(1).size(), ValueError);
}

TEST(Value, BytesRoundTrip) {
  const Bytes data{1, 2, 3, 4, 5};
  const Value v(data);
  EXPECT_TRUE(v.is_bytes());
  EXPECT_EQ(v.as_bytes(), data);
  EXPECT_EQ(Value::decode(v.encode()).as_bytes(), data);
}

}  // namespace
}  // namespace rcs
