// Property tests: randomly generated Values must round-trip the codec
// bit-identically, and corrupting any single byte of an encoding must never
// produce a Value that silently equals the original (it either decodes to a
// different Value or throws) — the property the fault-injection experiments
// and package checksums rely on.
#include <gtest/gtest.h>

#include "rcs/common/error.hpp"
#include "rcs/common/rng.hpp"
#include "rcs/common/value.hpp"

namespace rcs {
namespace {

Value random_value(Rng& rng, int depth) {
  const int kind = static_cast<int>(rng.uniform_int(0, depth > 0 ? 7 : 5));
  switch (kind) {
    case 0:
      return {};
    case 1:
      return Value(rng.bernoulli(0.5));
    case 2:
      return Value(static_cast<std::int64_t>(rng.next_u64()));
    case 3:
      return Value(rng.uniform(-1e9, 1e9));
    case 4: {
      std::string s;
      const auto n = rng.uniform_int(0, 24);
      for (int i = 0; i < n; ++i) {
        s += static_cast<char>(rng.uniform_int(0, 255));
      }
      return Value(std::move(s));
    }
    case 5: {
      Bytes b;
      const auto n = rng.uniform_int(0, 32);
      for (int i = 0; i < n; ++i) {
        b.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      }
      return Value(std::move(b));
    }
    case 6: {
      ValueList list;
      const auto n = rng.uniform_int(0, 5);
      for (int i = 0; i < n; ++i) list.push_back(random_value(rng, depth - 1));
      return Value(std::move(list));
    }
    default: {
      ValueMap map;
      const auto n = rng.uniform_int(0, 5);
      for (int i = 0; i < n; ++i) {
        map["k" + std::to_string(rng.uniform_int(0, 99))] =
            random_value(rng, depth - 1);
      }
      return Value(std::move(map));
    }
  }
}

class ValueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ValueFuzz, EncodeDecodeRoundTrips) {
  Rng rng(0xF00D + GetParam());
  for (int i = 0; i < 200; ++i) {
    const Value original = random_value(rng, 3);
    const Value decoded = Value::decode(original.encode());
    ASSERT_EQ(decoded, original) << original.to_string();
  }
}

TEST_P(ValueFuzz, EncodingIsCanonical) {
  // Same Value -> same bytes (the digest comparisons in LFR notifications
  // and TR voting depend on this).
  Rng rng(0xBEEF + GetParam());
  for (int i = 0; i < 100; ++i) {
    const Value v = random_value(rng, 3);
    ASSERT_EQ(v.encode(), Value::decode(v.encode()).encode());
  }
}

TEST_P(ValueFuzz, EncodedSizeMatchesEncodeExactly) {
  // encoded_size() computes sizes without serializing; it must agree with the
  // real encoding byte-for-byte on arbitrary shapes (message size accounting
  // in the simulated network depends on it).
  Rng rng(0xD1CE + GetParam());
  for (int i = 0; i < 200; ++i) {
    const Value v = random_value(rng, 3);
    ASSERT_EQ(v.encoded_size(), v.encode().size()) << v.to_string();
  }
}

TEST_P(ValueFuzz, SingleByteCorruptionNeverGoesUnnoticed) {
  Rng rng(0xCAFE + GetParam());
  for (int i = 0; i < 50; ++i) {
    const Value original = random_value(rng, 2);
    Bytes encoded = original.encode();
    if (encoded.size() < 2) continue;
    const auto pos = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(encoded.size()) - 1));
    const auto bit = rng.uniform_int(0, 7);
    encoded[pos] = static_cast<std::uint8_t>(encoded[pos] ^ (1u << bit));
    try {
      const Value decoded = Value::decode(encoded);
      // If it decodes, it must not silently equal the original while the
      // bytes differ in a semantic position... unless the flip landed in a
      // spot encoding the same logical value (cannot happen with this codec:
      // tags, varints and payloads are all significant).
      ASSERT_NE(decoded, original)
          << "byte " << pos << " bit " << bit << " of "
          << original.to_string();
    } catch (const ValueError&) {
      // Rejected: also fine.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueFuzz, ::testing::Range(0, 5));

}  // namespace
}  // namespace rcs
