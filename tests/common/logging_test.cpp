#include "rcs/common/logging.hpp"

#include <gtest/gtest.h>

namespace rcs {
namespace {

TEST(Logging, CapturingSinkReceivesRecords) {
  CapturingLog capture(LogLevel::kDebug);
  log().debug("test", "hello ", 42);
  log().info("test", "world");
  ASSERT_EQ(capture.records().size(), 2u);
  EXPECT_EQ(capture.records()[0].message, "hello 42");
  EXPECT_EQ(capture.records()[0].level, LogLevel::kDebug);
  EXPECT_EQ(capture.records()[1].tag, "test");
}

TEST(Logging, LevelFilterSuppressesBelow) {
  CapturingLog capture(LogLevel::kWarn);
  log().info("test", "ignored");
  log().warn("test", "kept");
  ASSERT_EQ(capture.records().size(), 1u);
  EXPECT_EQ(capture.records()[0].message, "kept");
}

TEST(Logging, ContainsFindsSubstring) {
  CapturingLog capture;
  log().info("test", "the needle is here");
  EXPECT_TRUE(capture.contains("needle"));
  EXPECT_FALSE(capture.contains("haystack-only"));
}

TEST(Logging, CountLevelCountsExactLevel) {
  CapturingLog capture;
  log().info("t", "a");
  log().info("t", "b");
  log().error("t", "c");
  EXPECT_EQ(capture.count_level(LogLevel::kInfo), 2u);
  EXPECT_EQ(capture.count_level(LogLevel::kError), 1u);
  EXPECT_EQ(capture.count_level(LogLevel::kWarn), 0u);
}

TEST(Logging, TimeSourceIsUsedForTimestamps) {
  log().set_time_source([] { return std::int64_t{123456}; });
  CapturingLog capture;
  log().info("t", "stamped");
  log().reset_time_source();
  ASSERT_EQ(capture.records().size(), 1u);
  EXPECT_EQ(capture.records()[0].time_us, 123456);
}

TEST(Logging, SinkRemovalStopsDelivery) {
  std::size_t count = 0;
  const auto id = log().add_sink([&count](const LogRecord&) { ++count; });
  log().warn("t", "one");
  log().remove_sink(id);
  log().warn("t", "two");
  EXPECT_EQ(count, 1u);
}

TEST(Logging, LevelNamesAreStable) {
  EXPECT_STREQ(to_string(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(to_string(LogLevel::kError), "ERROR");
}

TEST(Strf, ConcatenatesMixedTypes) {
  EXPECT_EQ(strf("a=", 1, " b=", 2.5, " c=", true), "a=1 b=2.5 c=1");
  EXPECT_EQ(strf(), "");
}

}  // namespace
}  // namespace rcs
