// Fault-simulation registry properties: indicator semantics (every-nth,
// after-time, probability), parameter predicates, fire bounds across
// re-arms, seeded determinism, and coverage-report ordering/merging.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rcs/fsim/fsim.hpp"

namespace rcs::fsim::testing {
namespace {

Site site(std::string_view state, std::size_t bytes = 0,
          std::int64_t now_us = 0) {
  Site s;
  s.state = state;
  s.bytes = bytes;
  s.now_us = now_us;
  return s;
}

Registry enabled_registry() {
  Registry registry;
  registry.set_enabled(true);
  return registry;
}

TEST(FsimPoint, NamesRoundTripThroughTheCatalogue) {
  for (int i = 0; i < kPointCount; ++i) {
    const auto p = static_cast<Point>(i);
    Point back{};
    ASSERT_TRUE(point_from_name(to_string(p), back)) << to_string(p);
    EXPECT_EQ(back, p);
    EXPECT_NE(point_def(p).params, nullptr);
    EXPECT_NE(point_def(p).description, nullptr);
  }
  Point out{};
  EXPECT_FALSE(point_from_name("no.such.point", out));
  EXPECT_FALSE(point_from_name("", out));
}

TEST(FsimRegistry, DisabledRegistryNeverFiresNorRecords) {
  Registry registry;
  Indicator always;
  always.kind = Indicator::Kind::kAlways;
  registry.arm(Point::kCkptApply, always);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(registry.should_fail(Point::kCkptApply, site("backup/delta")));
  }
  EXPECT_EQ(registry.hits(Point::kCkptApply), 0u);
  EXPECT_EQ(registry.fires(Point::kCkptApply), 0u);
  EXPECT_EQ(registry.coverage().pair_count(), 0u);
}

TEST(FsimRegistry, EveryNthFiresOnExactlyTheNthMatchingHit) {
  auto registry = enabled_registry();
  Indicator nth;
  nth.kind = Indicator::Kind::kEveryNth;
  nth.n = 3;
  nth.max_fires = 0;  // unbounded: observe the periodicity itself
  registry.arm(Point::kReplylogAppend, nth);
  std::vector<bool> decisions;
  for (int i = 0; i < 9; ++i) {
    decisions.push_back(
        registry.should_fail(Point::kReplylogAppend, site("record", 64)));
  }
  const std::vector<bool> expected = {false, false, true,  false, false,
                                      true,  false, false, true};
  EXPECT_EQ(decisions, expected);
  EXPECT_EQ(registry.hits(Point::kReplylogAppend), 9u);
  EXPECT_EQ(registry.fires(Point::kReplylogAppend), 3u);
}

TEST(FsimRegistry, MaxFiresBoundsTheWindowAndRearmResetsIt) {
  auto registry = enabled_registry();
  Indicator always;
  always.kind = Indicator::Kind::kAlways;
  always.max_fires = 2;
  registry.arm(Point::kCkptSerialize, always);
  int fired = 0;
  for (int i = 0; i < 6; ++i) {
    if (registry.should_fail(Point::kCkptSerialize, site("primary/delta"))) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 2);  // bound applies within one armed window

  // Re-arming opens a fresh window; lifetime fires keep accumulating.
  registry.arm(Point::kCkptSerialize, always);
  for (int i = 0; i < 6; ++i) {
    if (registry.should_fail(Point::kCkptSerialize, site("primary/delta"))) {
      ++fired;
    }
  }
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(registry.fires(Point::kCkptSerialize), 4u);
  EXPECT_EQ(registry.hits(Point::kCkptSerialize), 12u);
}

TEST(FsimRegistry, AfterTimeFiresOnlyAtOrPastTheThreshold) {
  auto registry = enabled_registry();
  Indicator after;
  after.kind = Indicator::Kind::kAfterTime;
  after.after_us = 1000;
  after.max_fires = 0;
  registry.arm(Point::kTimerArm, after);
  EXPECT_FALSE(
      registry.should_fail(Point::kTimerArm, site("peer_retry", 0, 0)));
  EXPECT_FALSE(
      registry.should_fail(Point::kTimerArm, site("peer_retry", 0, 999)));
  EXPECT_TRUE(
      registry.should_fail(Point::kTimerArm, site("peer_retry", 0, 1000)));
  EXPECT_TRUE(
      registry.should_fail(Point::kTimerArm, site("peer_retry", 0, 5000)));
}

TEST(FsimRegistry, DisarmStopsFiringButCoverageKeepsRecordingHits) {
  auto registry = enabled_registry();
  Indicator always;
  always.kind = Indicator::Kind::kAlways;
  registry.arm(Point::kRepoFetch, always);
  EXPECT_TRUE(registry.armed(Point::kRepoFetch));
  EXPECT_TRUE(registry.should_fail(Point::kRepoFetch, site("full", 10)));
  registry.disarm(Point::kRepoFetch);
  EXPECT_FALSE(registry.armed(Point::kRepoFetch));
  EXPECT_FALSE(registry.should_fail(Point::kRepoFetch, site("full", 10)));
  EXPECT_EQ(registry.hits(Point::kRepoFetch), 2u);
  EXPECT_EQ(registry.fires(Point::kRepoFetch), 1u);
}

TEST(FsimRegistry, StateFilterIsAPrefixMatchOnTheProtocolState) {
  auto registry = enabled_registry();
  Indicator always;
  always.kind = Indicator::Kind::kAlways;
  always.max_fires = 0;
  always.state_filter = "primary/";
  registry.arm(Point::kCkptSerialize, always);
  EXPECT_TRUE(
      registry.should_fail(Point::kCkptSerialize, site("primary/delta")));
  EXPECT_TRUE(
      registry.should_fail(Point::kCkptSerialize, site("primary/full")));
  EXPECT_FALSE(
      registry.should_fail(Point::kCkptSerialize, site("backup/delta")));
  EXPECT_FALSE(registry.should_fail(Point::kCkptSerialize, site("prim")));
}

TEST(FsimRegistry, MinBytesGatesOnPayloadSize) {
  auto registry = enabled_registry();
  Indicator always;
  always.kind = Indicator::Kind::kAlways;
  always.max_fires = 0;
  always.min_bytes = 100;
  registry.arm(Point::kCkptApply, always);
  EXPECT_FALSE(registry.should_fail(Point::kCkptApply, site("backup/full", 99)));
  EXPECT_TRUE(registry.should_fail(Point::kCkptApply, site("backup/full", 100)));
  EXPECT_TRUE(registry.should_fail(Point::kCkptApply, site("backup/full", 500)));
}

TEST(FsimRegistry, ProbabilityDecisionsAreSeedDeterministic) {
  Indicator coin;
  coin.kind = Indicator::Kind::kProbability;
  coin.probability = 0.5;
  coin.max_fires = 0;

  const auto draw = [&](std::uint64_t seed) {
    auto registry = enabled_registry();
    registry.reseed(seed);
    registry.arm(Point::kScriptRollback, coin);
    std::vector<bool> decisions;
    for (int i = 0; i < 64; ++i) {
      decisions.push_back(
          registry.should_fail(Point::kScriptRollback, site("transition", 1)));
    }
    return decisions;
  };

  const auto a = draw(42);
  EXPECT_EQ(a, draw(42));  // same seed, same decision sequence
  EXPECT_NE(a, draw(43));  // 2^-64 flake odds; a differing seed must diverge
}

TEST(FsimRegistry, ResetForgetsTalliesButKeepsEnabledAndSeed) {
  auto registry = enabled_registry();
  registry.reseed(7);
  Indicator always;
  always.kind = Indicator::Kind::kAlways;
  registry.arm(Point::kTimerArm, always);
  EXPECT_TRUE(registry.should_fail(Point::kTimerArm, site("resume")));
  registry.reset();
  EXPECT_TRUE(registry.enabled());
  EXPECT_FALSE(registry.armed(Point::kTimerArm));
  EXPECT_EQ(registry.hits(Point::kTimerArm), 0u);
  EXPECT_EQ(registry.fires(Point::kTimerArm), 0u);
  EXPECT_EQ(registry.coverage().pair_count(), 0u);
}

TEST(FsimCoverage, PairsAreSortedByPointThenStateRegardlessOfHitOrder) {
  auto registry = enabled_registry();
  // Touch states in deliberately reversed order.
  (void)registry.should_fail(Point::kTimerArm, site("resume"));
  (void)registry.should_fail(Point::kTimerArm, site("peer_retry"));
  (void)registry.should_fail(Point::kCkptApply, site("backup/full", 8));
  (void)registry.should_fail(Point::kCkptApply, site("backup/delta", 8));
  const auto coverage = registry.coverage();
  ASSERT_EQ(coverage.pair_count(), 4u);
  for (std::size_t i = 1; i < coverage.pairs.size(); ++i) {
    const auto& prev = coverage.pairs[i - 1];
    const auto& cur = coverage.pairs[i];
    EXPECT_TRUE(prev.point < cur.point ||
                (prev.point == cur.point && prev.state < cur.state));
  }
  EXPECT_EQ(coverage.pairs.front().state, "backup/delta");
  EXPECT_EQ(coverage.hits_of(Point::kTimerArm), 2u);
}

TEST(FsimCoverage, MergeIsOrderInsensitiveAndAddsTallies) {
  CoverageReport a;
  a.pairs.push_back({0, "primary/delta", 4, 1});
  a.pairs.push_back({2, "record", 10, 2});
  CoverageReport b;
  b.pairs.push_back({0, "primary/full", 3, 0});
  b.pairs.push_back({2, "record", 5, 1});
  b.pairs.push_back({5, "resume", 7, 7});

  CoverageReport ab = a;
  ab.merge(b);
  CoverageReport ba = b;
  ba.merge(a);
  EXPECT_EQ(ab.to_json(), ba.to_json());
  ASSERT_EQ(ab.pair_count(), 4u);
  EXPECT_EQ(ab.fire_total(), 11u);
  EXPECT_EQ(ab.hits_of(Point::kReplylogAppend), 15u);
  EXPECT_EQ(ab.fires_of(Point::kReplylogAppend), 3u);

  // Merging an empty report is the identity in both directions.
  CoverageReport empty;
  CoverageReport c = ab;
  c.merge(empty);
  EXPECT_EQ(c.to_json(), ab.to_json());
  empty.merge(ab);
  EXPECT_EQ(empty.to_json(), ab.to_json());
}

TEST(FsimIndicator, ToStringIsCanonicalPerKind) {
  Indicator ind;
  EXPECT_EQ(ind.to_string(), "off max_fires=1");

  ind.kind = Indicator::Kind::kAlways;
  ind.max_fires = 3;
  EXPECT_EQ(ind.to_string(), "always max_fires=3");

  ind.kind = Indicator::Kind::kEveryNth;
  ind.n = 4;
  EXPECT_EQ(ind.to_string(), "nth:4 max_fires=3");

  ind.kind = Indicator::Kind::kAfterTime;
  ind.after_us = 123456;
  EXPECT_EQ(ind.to_string(), "after:123456 max_fires=3");

  ind.kind = Indicator::Kind::kProbability;
  ind.probability = 0.375;
  ind.state_filter = "backup/";
  ind.min_bytes = 32;
  EXPECT_EQ(ind.to_string(), "p:0.3750 max_fires=3 state=backup/ min_bytes=32");
}

}  // namespace
}  // namespace rcs::fsim::testing
