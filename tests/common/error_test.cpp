#include "rcs/common/error.hpp"

#include <gtest/gtest.h>

namespace rcs {
namespace {

TEST(Error, HierarchyIsCatchableAsBase) {
  try {
    throw ScriptException("reconfiguration failed");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "reconfiguration failed");
  }
}

TEST(Error, EnsurePassesOnTrue) {
  EXPECT_NO_THROW(ensure(true, "never"));
}

TEST(Error, EnsureThrowsLogicErrorOnFalse) {
  EXPECT_THROW(ensure(false, "broken invariant"), LogicError);
}

TEST(Status, DefaultIsOk) {
  const Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_NO_THROW(s.check());
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s(ErrorCode::kNotFound, "no such component");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), ErrorCode::kNotFound);
  EXPECT_EQ(s.message(), "no such component");
  EXPECT_THROW(s.check(), Error);
}

TEST(Status, CodeNamesAreStable) {
  EXPECT_STREQ(to_string(ErrorCode::kOk), "ok");
  EXPECT_STREQ(to_string(ErrorCode::kFailedPrecondition), "failed_precondition");
  EXPECT_STREQ(to_string(ErrorCode::kAborted), "aborted");
}

TEST(Result, HoldsValue) {
  const Result<int> r(7);
  ASSERT_TRUE(r.is_ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_TRUE(r.status().is_ok());
}

TEST(Result, HoldsError) {
  const Result<int> r(ErrorCode::kInvalidArgument, "bad input");
  EXPECT_FALSE(r.is_ok());
  EXPECT_FALSE(static_cast<bool>(r));
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_THROW((void)r.value(), Error);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, ConstructingFromOkStatusIsALogicError) {
  EXPECT_THROW((Result<int>(Status::ok())), LogicError);
}

}  // namespace
}  // namespace rcs
