#include "rcs/common/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "rcs/common/error.hpp"

namespace rcs {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(7);
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
}

TEST(Rng, UniformIntEmptyRangeThrows) {
  Rng rng(7);
  EXPECT_THROW((void)rng.uniform_int(5, 4), LogicError);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(13);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, BernoulliRespectsProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(19);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(23);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(29);
  EXPECT_THROW((void)rng.exponential(0.0), LogicError);
  EXPECT_THROW((void)rng.exponential(-1.0), LogicError);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng rng(31);
  const auto first = rng.next_u64();
  (void)rng.next_u64();
  rng.reseed(31);
  EXPECT_EQ(rng.next_u64(), first);
}

}  // namespace
}  // namespace rcs
