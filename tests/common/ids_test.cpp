#include "rcs/common/ids.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <unordered_set>

namespace rcs {
namespace {

TEST(Ids, DefaultIsZero) {
  EXPECT_EQ(HostId{}.value(), 0u);
  EXPECT_EQ(RequestId{}.value(), 0u);
}

TEST(Ids, ComparisonAndOrdering) {
  const HostId a{1}, b{2};
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_EQ(a, HostId{1});
}

TEST(Ids, StreamPrefix) {
  std::ostringstream os;
  os << HostId{3} << " " << RequestId{17} << " " << TransitionId{5};
  EXPECT_EQ(os.str(), "h3 r17 x5");
}

TEST(Ids, Hashable) {
  std::unordered_set<RequestId> seen;
  seen.insert(RequestId{1});
  seen.insert(RequestId{2});
  seen.insert(RequestId{1});
  EXPECT_EQ(seen.size(), 2u);
}

}  // namespace
}  // namespace rcs
