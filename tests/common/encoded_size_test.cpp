// Value::encoded_size() contract: byte-identical to encode().size() for every
// Value shape, and allocation-free — it prices every simulated message
// (Network::send), so it must not serialize.
//
// The allocation check replaces the global operator new/delete pair with a
// counting forwarder; replacement is program-wide, which is exactly what we
// want: ANY heap activity inside encoded_size() trips the counter.
// GCC flags the malloc/free pairing inside the replaced operators as a
// mismatched allocation when it inlines them into std containers; the pairing
// is intentional and correct (new forwards to malloc, delete to free).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "rcs/common/value.hpp"

namespace {
std::atomic<std::size_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  ++g_allocations;
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace rcs {
namespace {

std::vector<Value> all_shapes() {
  std::vector<Value> shapes;
  shapes.emplace_back();                       // null
  shapes.emplace_back(true);                   // bool
  shapes.emplace_back(false);
  shapes.emplace_back(std::int64_t{0});
  shapes.emplace_back(std::int64_t{-1});
  shapes.emplace_back(std::int64_t{1} << 62);
  shapes.emplace_back(3.14159);
  shapes.emplace_back(std::string{});          // empty string
  shapes.emplace_back(std::string(1, 'x'));
  shapes.emplace_back(std::string(127, 'a'));  // 1-byte varint length, max
  shapes.emplace_back(std::string(128, 'b'));  // 2-byte varint length, min
  shapes.emplace_back(std::string(16384, 'c'));  // 3-byte varint length
  shapes.emplace_back(Bytes{});
  shapes.emplace_back(Bytes(200, 0x5A));
  shapes.emplace_back(Value::list());          // empty list
  Value list = Value::list();
  for (int i = 0; i < 130; ++i) list.push_back(Value(std::int64_t{i}));
  shapes.push_back(list);                      // count needs a 2-byte varint
  shapes.emplace_back(Value::map());           // empty map
  Value nested = Value::map();
  nested.set("s", "str").set("b", Bytes{1, 2, 3}).set("l", list);
  nested.set("m", Value::map().set("inner", Value(7.5)).set("deep", list));
  shapes.push_back(nested);
  return shapes;
}

TEST(EncodedSize, MatchesEncodeAcrossAllShapes) {
  for (const Value& v : all_shapes()) {
    EXPECT_EQ(v.encoded_size(), v.encode().size()) << v.to_string();
  }
}

TEST(EncodedSize, PerformsZeroHeapAllocations) {
  const auto shapes = all_shapes();
  std::size_t total = 0;
  const std::size_t before = g_allocations.load();
  for (const Value& v : shapes) total += v.encoded_size();
  EXPECT_EQ(g_allocations.load(), before)
      << "encoded_size allocated on the heap";
  EXPECT_GT(total, 16384u);  // the big string alone guarantees this
}

TEST(EncodedSize, EncodeReservesExactly) {
  // With the reserve() pre-sizing pass, encode() should produce a buffer
  // whose size equals the predicted size (capacity is at least that).
  for (const Value& v : all_shapes()) {
    const Bytes encoded = v.encode();
    EXPECT_EQ(encoded.size(), v.encoded_size());
    EXPECT_GE(encoded.capacity(), encoded.size());
  }
}

}  // namespace
}  // namespace rcs
