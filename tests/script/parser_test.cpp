#include "rcs/script/parser.hpp"

#include <gtest/gtest.h>

#include "rcs/common/error.hpp"

namespace rcs::script {
namespace {

const VerbStmt& as_verb(const StmtPtr& stmt) {
  return std::get<VerbStmt>(stmt->node);
}

TEST(Parser, BareStatementList) {
  const Script script = parse(R"(
    stop("syncBefore");
    remove("syncBefore");
  )");
  EXPECT_TRUE(script.name.empty());
  ASSERT_EQ(script.statements.size(), 2u);
  EXPECT_EQ(as_verb(script.statements[0]).verb, "stop");
  EXPECT_EQ(as_verb(script.statements[1]).verb, "remove");
}

TEST(Parser, NamedScriptHeader) {
  const Script script = parse(R"(
    script pbr_to_lfr {
      stop("syncBefore");
    }
  )");
  EXPECT_EQ(script.name, "pbr_to_lfr");
  ASSERT_EQ(script.statements.size(), 1u);
}

TEST(Parser, VerbArgumentsAreExpressions) {
  const Script script = parse(R"(wire("fwd", "next", "echo", "svc");)");
  const auto& verb = as_verb(script.statements[0]);
  ASSERT_EQ(verb.args.size(), 4u);
  EXPECT_EQ(std::get<LiteralExpr>(verb.args[2]->node).value.as_string(), "echo");
}

TEST(Parser, LetAndVariableReference) {
  const Script script = parse(R"(
    let role = "master";
    set("protocol", "role", role);
  )");
  ASSERT_EQ(script.statements.size(), 2u);
  const auto& let = std::get<LetStmt>(script.statements[0]->node);
  EXPECT_EQ(let.name, "role");
  const auto& verb = as_verb(script.statements[1]);
  EXPECT_TRUE(std::holds_alternative<VarExpr>(verb.args[2]->node));
}

TEST(Parser, RequireWithCall) {
  const Script script = parse(R"(require exists("protocol");)");
  const auto& require = std::get<RequireStmt>(script.statements[0]->node);
  const auto& call = std::get<CallExpr>(require.condition->node);
  EXPECT_EQ(call.function, "exists");
  ASSERT_EQ(call.args.size(), 1u);
}

TEST(Parser, IfElseChain) {
  const Script script = parse(R"(
    if (exists("a")) {
      stop("a");
    } else if (exists("b")) {
      stop("b");
    } else {
      log("neither");
    }
  )");
  const auto& outer = std::get<IfStmt>(script.statements[0]->node);
  EXPECT_EQ(outer.then_body.size(), 1u);
  ASSERT_EQ(outer.else_body.size(), 1u);
  const auto& inner = std::get<IfStmt>(outer.else_body[0]->node);
  EXPECT_EQ(inner.then_body.size(), 1u);
  EXPECT_EQ(inner.else_body.size(), 1u);
}

TEST(Parser, BooleanPrecedenceOrBindsLoosest) {
  // a && b || c  parses as  (a && b) || c
  const Script script = parse(R"(require exists("a") && exists("b") || exists("c");)");
  const auto& require = std::get<RequireStmt>(script.statements[0]->node);
  const auto& or_expr = std::get<BinaryExpr>(require.condition->node);
  EXPECT_EQ(or_expr.op, BinaryExpr::Op::kOr);
  const auto& lhs = std::get<BinaryExpr>(or_expr.lhs->node);
  EXPECT_EQ(lhs.op, BinaryExpr::Op::kAnd);
}

TEST(Parser, EqualityAndNegation) {
  const Script script = parse(R"(require !(typeof("x") == "t.a");)");
  const auto& require = std::get<RequireStmt>(script.statements[0]->node);
  const auto& negation = std::get<NotExpr>(require.condition->node);
  const auto& eq = std::get<BinaryExpr>(negation.operand->node);
  EXPECT_EQ(eq.op, BinaryExpr::Op::kEq);
}

TEST(Parser, ParenthesizedExpression) {
  const Script script = parse(R"(require (true || false) && true;)");
  const auto& require = std::get<RequireStmt>(script.statements[0]->node);
  const auto& and_expr = std::get<BinaryExpr>(require.condition->node);
  EXPECT_EQ(and_expr.op, BinaryExpr::Op::kAnd);
  EXPECT_EQ(std::get<BinaryExpr>(and_expr.lhs->node).op, BinaryExpr::Op::kOr);
}

TEST(Parser, KeywordLiterals) {
  const Script script = parse(R"(set("c", "k", true); set("c", "k", null);)");
  EXPECT_TRUE(std::get<LiteralExpr>(as_verb(script.statements[0]).args[2]->node)
                  .value.as_bool());
  EXPECT_TRUE(std::get<LiteralExpr>(as_verb(script.statements[1]).args[2]->node)
                  .value.is_null());
}

TEST(Parser, StatementLineNumbersRecorded) {
  const Script script = parse("stop(\"a\");\n\nstop(\"b\");");
  EXPECT_EQ(script.statements[0]->line, 1);
  EXPECT_EQ(script.statements[1]->line, 3);
}

TEST(Parser, MissingSemicolonThrows) {
  EXPECT_THROW((void)parse(R"(stop("a"))"), ScriptException);
}

TEST(Parser, MissingParenThrows) {
  EXPECT_THROW((void)parse(R"(stop "a";)"), ScriptException);
  EXPECT_THROW((void)parse(R"(stop("a";)"), ScriptException);
}

TEST(Parser, DanglingBraceThrows) {
  EXPECT_THROW((void)parse("script x { stop(\"a\");"), ScriptException);
  EXPECT_THROW((void)parse("}"), ScriptException);
}

TEST(Parser, KeywordAsExpressionThrows) {
  EXPECT_THROW((void)parse("require let;"), ScriptException);
}

TEST(Parser, ErrorMessagesCarryLineNumbers) {
  try {
    (void)parse("stop(\"a\");\nbroken here");
    FAIL() << "expected ScriptException";
  } catch (const ScriptException& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(Parser, EmptyScriptIsValid) {
  EXPECT_TRUE(parse("").statements.empty());
  EXPECT_TRUE(parse("script empty {}").statements.empty());
}

TEST(Parser, TrailingTokensAfterScriptBodyThrow) {
  EXPECT_THROW((void)parse("script x {} stop(\"a\");"), ScriptException);
}

}  // namespace
}  // namespace rcs::script
