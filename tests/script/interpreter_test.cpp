#include "rcs/script/interpreter.hpp"

#include <gtest/gtest.h>

#include "../component/test_types.hpp"
#include "rcs/common/logging.hpp"
#include "rcs/script/parser.hpp"

namespace rcs::script {
namespace {

using comp::ComponentRegistry;
using comp::Composite;

struct InterpreterFixture : ::testing::Test {
  ComponentRegistry registry = comp::testing::make_full_registry();
  Composite root{"ftm", {.registry = &registry}};

  /// Snapshot of the architecture for unchanged-configuration assertions.
  struct Snapshot {
    std::vector<std::string> children;
    std::vector<comp::WireInfo> wires;
    std::vector<std::pair<std::string, comp::LifecycleState>> states;

    bool operator==(const Snapshot&) const = default;
  };

  Snapshot snapshot() const {
    Snapshot s;
    s.children = root.children();
    s.wires = root.wires();
    for (const auto& name : s.children) {
      s.states.emplace_back(name, root.child(name).state());
    }
    return s;
  }

  void deploy_pipeline() {
    root.add("test.forwarder", "fwd");
    root.add("test.echo", "echo");
    root.wire("fwd", "next", "echo", "svc");
    root.start("echo");
    root.start("fwd");
  }
};

TEST_F(InterpreterFixture, AddWireStartPipeline) {
  const auto stats = Interpreter::run_source(R"(
    add("test.forwarder", "fwd");
    add("test.echo", "echo");
    wire("fwd", "next", "echo", "svc");
    start("echo");
    start("fwd");
  )",
                                             root);
  EXPECT_EQ(stats.ops, 5);
  EXPECT_EQ(stats.by_verb.at("add"), 2);
  EXPECT_EQ(root.invoke("fwd", "svc", "ping", Value(1)).at("op").as_string(),
            "ping");
}

TEST_F(InterpreterFixture, DifferentialReplacementScript) {
  deploy_pipeline();
  // The paper's canonical move (§5.2): replace one brick, leave the rest.
  Interpreter::run_source(R"(
    script replace_echo_with_upper {
      stop("echo");
      unwire("fwd", "next");
      remove("echo");
      add("test.upper", "echo2");
      wire("fwd", "next", "echo2", "svc");
      start("echo2");
    }
  )",
                          root);
  EXPECT_FALSE(root.has("echo"));
  EXPECT_EQ(root.invoke("fwd", "svc", "x", {}).as_string(), "upper:x");
  EXPECT_TRUE(root.child("fwd").started()) << "common part untouched";
}

TEST_F(InterpreterFixture, BindingsActAsVariables) {
  Interpreter::run_source(R"(
    add(brick, "c");
    set("c", "mode", role);
  )",
                          root,
                          Value::map()
                              .set("brick", "test.spy")
                              .set("role", "master"));
  EXPECT_EQ(root.property("c", "mode").as_string(), "master");
}

TEST_F(InterpreterFixture, RequirePassesAndFails) {
  deploy_pipeline();
  EXPECT_NO_THROW(Interpreter::run_source(R"(require exists("fwd");)", root));
  EXPECT_THROW(Interpreter::run_source(R"(require exists("ghost");)", root),
               ScriptException);
}

TEST_F(InterpreterFixture, BuiltinIntrospectionFunctions) {
  deploy_pipeline();
  root.stop("echo");
  EXPECT_NO_THROW(Interpreter::run_source(R"(
    require exists("echo");
    require !started("echo");
    require started("fwd");
    require wired("fwd", "next");
    require !wired("echo", "anything");
    require typeof("echo") == "test.echo";
    require typeof("ghost") == null;
  )",
                                          root));
}

TEST_F(InterpreterFixture, PropertyBuiltinReadsValues) {
  root.add("test.spy", "spy");
  EXPECT_NO_THROW(Interpreter::run_source(
      R"(require property("spy", "mode") == "default";)", root));
}

TEST_F(InterpreterFixture, IfElseSelectsBranch) {
  deploy_pipeline();
  Interpreter::run_source(R"(
    if (exists("ghost")) {
      remove("ghost");
    } else {
      add("test.spy", "added_by_else");
    }
  )",
                          root);
  EXPECT_TRUE(root.has("added_by_else"));
}

TEST_F(InterpreterFixture, FailedScriptRollsBackEverything) {
  deploy_pipeline();
  const auto before = snapshot();
  // Fails at the last statement: wiring to a missing component.
  EXPECT_THROW(Interpreter::run_source(R"(
    stop("echo");
    unwire("fwd", "next");
    remove("echo");
    add("test.upper", "upper");
    wire("fwd", "next", "ghost", "svc");
  )",
                                       root),
               ScriptException);
  EXPECT_EQ(snapshot(), before) << "all-or-nothing: architecture unchanged";
  EXPECT_EQ(root.invoke("fwd", "svc", "x", Value(1)).at("op").as_string(), "x");
}

TEST_F(InterpreterFixture, RequireFailureMidScriptRollsBack) {
  deploy_pipeline();
  const auto before = snapshot();
  EXPECT_THROW(Interpreter::run_source(R"(
    add("test.spy", "temp");
    start("temp");
    require exists("not_there");
  )",
                                       root),
               ScriptException);
  EXPECT_EQ(snapshot(), before);
}

TEST_F(InterpreterFixture, IntegrityViolationAtCommitRollsBack) {
  deploy_pipeline();
  const auto before = snapshot();
  // Leaves fwd started with an unwired required reference: passes statement
  // by statement but must be refused at commit time.
  EXPECT_THROW(Interpreter::run_source(R"(unwire("fwd", "next");)", root),
               ScriptException);
  EXPECT_EQ(snapshot(), before);
  EXPECT_TRUE(root.is_wired("fwd", "next"));
}

TEST_F(InterpreterFixture, RollbackRestoresPropertiesOfRemovedComponents) {
  root.add("test.spy", "spy");
  root.set_property("spy", "mode", Value("customized"));
  EXPECT_THROW(Interpreter::run_source(R"(
    remove("spy");
    require false;
  )",
                                       root),
               ScriptException);
  ASSERT_TRUE(root.has("spy"));
  EXPECT_EQ(root.property("spy", "mode").as_string(), "customized");
}

TEST_F(InterpreterFixture, RollbackRestoresUnwiredConnections) {
  deploy_pipeline();
  EXPECT_THROW(Interpreter::run_source(R"(
    stop("fwd");
    unwire("fwd", "next");
    require false;
  )",
                                       root),
               ScriptException);
  EXPECT_TRUE(root.is_wired("fwd", "next"));
  EXPECT_TRUE(root.child("fwd").started());
}

TEST_F(InterpreterFixture, UnknownVerbThrows) {
  EXPECT_THROW(Interpreter::run_source(R"(explode("all");)", root),
               ScriptException);
}

TEST_F(InterpreterFixture, UnknownFunctionThrows) {
  EXPECT_THROW(Interpreter::run_source(R"(require magic("x");)", root),
               ScriptException);
}

TEST_F(InterpreterFixture, UndefinedVariableThrows) {
  EXPECT_THROW(Interpreter::run_source(R"(add(mystery, "x");)", root),
               ScriptException);
}

TEST_F(InterpreterFixture, ArityErrorsThrow) {
  EXPECT_THROW(Interpreter::run_source(R"(wire("a", "b");)", root),
               ScriptException);
  EXPECT_THROW(Interpreter::run_source(R"(stop("a", "b");)", root),
               ScriptException);
}

TEST_F(InterpreterFixture, TypeErrorsInArgumentsThrow) {
  EXPECT_THROW(Interpreter::run_source(R"(stop(42);)", root), ScriptException);
}

TEST_F(InterpreterFixture, SetPropertyAcceptsNonStringValues) {
  root.add("test.spy", "spy");
  Interpreter::run_source(R"(set("spy", "threshold", 42);)", root);
  EXPECT_EQ(root.property("spy", "threshold").as_int(), 42);
}

TEST_F(InterpreterFixture, LogVerbDoesNotMutate) {
  deploy_pipeline();
  const auto before = snapshot();
  CapturingLog capture(LogLevel::kInfo);
  Interpreter::run_source(R"(log("transition starting");)", root);
  EXPECT_TRUE(capture.contains("transition starting"));
  EXPECT_EQ(snapshot(), before);
}

TEST_F(InterpreterFixture, StatsCountVerbsNotControlFlow) {
  const auto stats = Interpreter::run_source(R"(
    let t = "test.spy";
    if (true) { add(t, "a"); } else { add(t, "b"); }
    log("done");
  )",
                                             root);
  EXPECT_EQ(stats.ops, 1);
  EXPECT_EQ(stats.by_verb.size(), 1u);
}

// Property-style sweep: inject a failure after each prefix of a transition
// script and assert the architecture is bit-identical to the initial one.
class RollbackSweep : public InterpreterFixture,
                      public ::testing::WithParamInterface<int> {};

TEST_P(RollbackSweep, FailureAtAnyPointLeavesConfigurationUnchanged) {
  deploy_pipeline();
  const auto before = snapshot();

  const std::vector<std::string> steps = {
      R"(stop("echo");)",
      R"(unwire("fwd", "next");)",
      R"(remove("echo");)",
      R"(add("test.upper", "upper");)",
      R"(wire("fwd", "next", "upper", "svc");)",
      R"(start("upper");)",
  };
  std::string source;
  for (int i = 0; i < GetParam(); ++i) source += steps[i] + "\n";
  source += "require false; // injected failure\n";

  EXPECT_THROW(Interpreter::run_source(source, root), ScriptException);
  EXPECT_EQ(snapshot(), before) << "failure after " << GetParam() << " steps";
}

INSTANTIATE_TEST_SUITE_P(AllPrefixes, RollbackSweep,
                         ::testing::Range(0, 7));

}  // namespace
}  // namespace rcs::script
