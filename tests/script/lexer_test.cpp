#include "rcs/script/lexer.hpp"

#include <gtest/gtest.h>

#include "rcs/common/error.hpp"

namespace rcs::script {
namespace {

TEST(Lexer, EmptySourceYieldsEnd) {
  const auto tokens = tokenize("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kEnd);
}

TEST(Lexer, IdentifiersAndKeywords) {
  const auto tokens = tokenize("add let syncBefore if else require");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "add");
  EXPECT_EQ(tokens[1].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[2].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[3].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[4].kind, TokenKind::kKeyword);
  EXPECT_EQ(tokens[5].kind, TokenKind::kKeyword);
}

TEST(Lexer, DottedIdentifiers) {
  const auto tokens = tokenize("ftm.syncBefore.lfr");
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "ftm.syncBefore.lfr");
}

TEST(Lexer, StringLiteralsWithEscapes) {
  const auto tokens = tokenize(R"("hello" "a\"b" "tab\there" "back\\slash")");
  EXPECT_EQ(tokens[0].literal.as_string(), "hello");
  EXPECT_EQ(tokens[1].literal.as_string(), "a\"b");
  EXPECT_EQ(tokens[2].literal.as_string(), "tab\there");
  EXPECT_EQ(tokens[3].literal.as_string(), "back\\slash");
}

TEST(Lexer, Numbers) {
  const auto tokens = tokenize("42 -7 3.5 -0.25");
  EXPECT_EQ(tokens[0].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[0].literal.as_int(), 42);
  EXPECT_EQ(tokens[1].literal.as_int(), -7);
  EXPECT_EQ(tokens[2].kind, TokenKind::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].literal.as_double(), 3.5);
  EXPECT_DOUBLE_EQ(tokens[3].literal.as_double(), -0.25);
}

TEST(Lexer, OperatorsAndPunctuation) {
  const auto tokens = tokenize("(){};,== != && || ! =");
  const TokenKind expected[] = {
      TokenKind::kLParen, TokenKind::kRParen, TokenKind::kLBrace,
      TokenKind::kRBrace, TokenKind::kSemicolon, TokenKind::kComma,
      TokenKind::kEq,     TokenKind::kNeq,    TokenKind::kAnd,
      TokenKind::kOr,     TokenKind::kNot,    TokenKind::kAssign,
      TokenKind::kEnd};
  ASSERT_EQ(tokens.size(), std::size(expected));
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << "token " << i;
  }
}

TEST(Lexer, CommentsAreSkipped) {
  const auto tokens = tokenize("add // this is ignored\nremove");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "add");
  EXPECT_EQ(tokens[1].text, "remove");
  EXPECT_EQ(tokens[1].line, 2);
}

TEST(Lexer, LineNumbersTracked) {
  const auto tokens = tokenize("a\nb\n\nc");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[2].line, 4);
}

TEST(Lexer, UnterminatedStringThrowsWithLine) {
  try {
    (void)tokenize("\n\n\"oops");
    FAIL() << "expected ScriptException";
  } catch (const ScriptException& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("unterminated"), std::string::npos);
  }
}

TEST(Lexer, NewlineInsideStringThrows) {
  EXPECT_THROW((void)tokenize("\"a\nb\""), ScriptException);
}

TEST(Lexer, UnknownCharacterThrows) {
  EXPECT_THROW((void)tokenize("add @ remove"), ScriptException);
}

TEST(Lexer, SingleAmpersandThrows) {
  EXPECT_THROW((void)tokenize("a & b"), ScriptException);
  EXPECT_THROW((void)tokenize("a | b"), ScriptException);
}

TEST(Lexer, BadEscapeThrows) {
  EXPECT_THROW((void)tokenize(R"("bad\q")"), ScriptException);
}

TEST(Lexer, MalformedNumberThrows) {
  EXPECT_THROW((void)tokenize("1.2.3"), ScriptException);
}

}  // namespace
}  // namespace rcs::script
