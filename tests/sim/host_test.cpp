#include "rcs/sim/host.hpp"

#include <gtest/gtest.h>

#include "rcs/common/error.hpp"
#include "rcs/sim/simulation.hpp"

namespace rcs::sim {
namespace {

struct HostFixture : ::testing::Test {
  Simulation sim{7};
  Host& h = sim.add_host("node");
  Host& peer = sim.add_host("peer");
};

TEST_F(HostFixture, StartsAliveAtEpochZero) {
  EXPECT_TRUE(h.alive());
  EXPECT_EQ(h.epoch(), 0u);
  EXPECT_EQ(h.name(), "node");
}

TEST_F(HostFixture, CrashMakesHostSilent) {
  bool got = false;
  h.register_handler("m", [&](const Message&) { got = true; });
  h.crash();
  EXPECT_FALSE(h.alive());
  h.deliver({peer.id(), h.id(), "m", Payload{Value(1)}});
  EXPECT_FALSE(got);
}

TEST_F(HostFixture, CrashBumpsEpochAndClearsHandlers) {
  h.register_handler("m", [](const Message&) {});
  h.crash();
  EXPECT_EQ(h.epoch(), 1u);
  h.restart();
  EXPECT_EQ(h.epoch(), 2u);
  bool got = false;
  h.register_handler("m2", [&](const Message&) { got = true; });
  h.deliver({peer.id(), h.id(), "m", Payload{Value(1)}});   // old handler gone
  h.deliver({peer.id(), h.id(), "m2", Payload{Value(1)}});  // new one works
  EXPECT_TRUE(got);
}

TEST_F(HostFixture, DoubleCrashIsIdempotent) {
  h.crash();
  EXPECT_NO_THROW(h.crash());
  EXPECT_EQ(h.epoch(), 1u);
}

TEST_F(HostFixture, RestartOfAliveHostThrows) {
  EXPECT_THROW(h.restart(), LogicError);
}

TEST_F(HostFixture, EpochBoundTimerSkippedAfterCrash) {
  bool fired = false;
  h.schedule_after(10, [&] { fired = true; });
  h.crash();
  sim.run();
  EXPECT_FALSE(fired);
}

TEST_F(HostFixture, EpochBoundTimerSkippedAfterCrashRestartCycle) {
  bool fired = false;
  h.schedule_after(10, [&] { fired = true; });
  h.crash();
  h.restart();
  sim.run();
  EXPECT_FALSE(fired) << "timer from a previous epoch must not fire";
}

TEST_F(HostFixture, TimerFiresWhenHostStaysUp) {
  bool fired = false;
  h.schedule_after(10, [&] { fired = true; });
  sim.run();
  EXPECT_TRUE(fired);
}

TEST_F(HostFixture, CancelledHostTimerDoesNotFire) {
  bool fired = false;
  const auto id = h.schedule_after(10, [&] { fired = true; });
  h.cancel(id);
  sim.run();
  EXPECT_FALSE(fired);
}

TEST_F(HostFixture, CrashListenersRunBeforeTeardown) {
  bool saw_handler_alive = false;
  h.register_handler("m", [](const Message&) {});
  h.on_crash([&] { saw_handler_alive = h.alive(); });
  h.crash();
  EXPECT_TRUE(saw_handler_alive);
}

TEST_F(HostFixture, RestartListenersArePersistentAcrossCycles) {
  int restarts = 0;
  h.on_restart([&] { ++restarts; });
  h.crash();
  h.restart();
  EXPECT_EQ(restarts, 1);
  // Listeners persist: every crash/restart cycle re-runs them (a node agent
  // relies on this for repeated automatic recovery).
  h.crash();
  h.restart();
  EXPECT_EQ(restarts, 2);
}

TEST_F(HostFixture, StableStorageSurvivesCrash) {
  h.stable().put("config", Value("LFR"));
  h.crash();
  h.restart();
  EXPECT_EQ(h.stable().get("config").as_string(), "LFR");
  EXPECT_TRUE(h.stable().get("missing").is_null());
}

TEST_F(HostFixture, StableStorageEraseAndClear) {
  h.stable().put("a", 1);
  h.stable().put("b", 2);
  h.stable().erase("a");
  EXPECT_FALSE(h.stable().has("a"));
  EXPECT_EQ(h.stable().size(), 1u);
  h.stable().clear();
  EXPECT_EQ(h.stable().size(), 0u);
}

TEST_F(HostFixture, ChargeComputeScalesWithCpuSpeed) {
  h.capacity().cpu_speed = 2.0;
  const auto actual = h.charge_compute(1000);
  EXPECT_EQ(actual, 500);
  EXPECT_EQ(h.meter().cpu_used(), 500);
}

TEST_F(HostFixture, EnergyCombinesCpuAndTraffic) {
  h.capacity() = HostCapacity{1.0, 2.0, 0.5};
  h.meter().charge_cpu(kSecond);        // 1 cpu-second -> 2.0 energy
  h.meter().charge_sent(1'000'000);     // 1 MB -> 0.5 energy
  EXPECT_DOUBLE_EQ(h.meter().energy_used(h.capacity()), 2.5);
}

TEST_F(HostFixture, SendConvenienceRoutesThroughNetwork) {
  Value got;
  peer.register_handler("hello", [&](const Message& m) { got = m.payload; });
  h.send(peer.id(), "hello", Value(99));
  sim.run();
  EXPECT_EQ(got.as_int(), 99);
}

TEST_F(HostFixture, UnknownHostLookupThrows) {
  EXPECT_THROW((void)sim.host(HostId{99}), SimError);
}

TEST_F(HostFixture, TransientFaultsClearedOnRestart) {
  h.faults().transient_pending = 3;
  h.faults().permanent = true;
  h.crash();
  h.restart();
  EXPECT_EQ(h.faults().transient_pending, 0);
  EXPECT_TRUE(h.faults().permanent) << "permanent faults survive reboot";
}

}  // namespace
}  // namespace rcs::sim
