// Property test: the timer wheel is order-equivalent to a reference model.
//
// Drives randomized seeded interleavings of schedule / cancel / stale-cancel
// / step / run_until (including delays past the wheel's 2^32 us page, so the
// overflow heap and page migrations are exercised) through the real
// EventLoop and, in lockstep, through a trivially-correct reference model: a
// set ordered by (deadline, seq). Events fired by the real loop append their
// token to a log; after every drain the log must equal the model's pop order
// exactly, and pending()/now() must agree after every operation.
//
// Fired events re-arm follow-ups pseudo-randomly (derived from the token
// value, so both sides make identical choices without communicating), which
// exercises scheduling from inside a running action: same-instant re-seals,
// cascade interleavings, and the mid-drain placement paths.
//
// TimerId validity rides along: cancelled and fired ids are retained and
// replayed as stale cancels, which must be no-ops even after the underlying
// slot has been recycled for a live timer (slot-generation reuse).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "rcs/sim/event_loop.hpp"

namespace rcs::sim {
namespace {

/// splitmix64: cheap deterministic hash, used both as the driver RNG and to
/// derive per-token follow-up decisions identically on both sides.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool wants_followup(std::uint64_t token) { return mix(token) % 4 == 0; }

Duration followup_delay(std::uint64_t token) {
  const std::uint64_t h = mix(token ^ 0xA5A5A5A5ull);
  switch (h % 4) {
    case 0:
      return 0;  // same instant: must run within the current drain
    case 1:
      return static_cast<Duration>(h / 7 % 97);
    case 2:
      return static_cast<Duration>(h / 11 % 100'000);
    default:
      return static_cast<Duration>(h / 13 % 40'000'000);
  }
}

/// Reference model entry order: (deadline, schedule seq) — the strict total
/// order the loop must reproduce.
using ModelKey = std::tuple<Time, std::uint64_t, std::uint64_t>;

struct Harness {
  EventLoop loop;
  std::vector<std::uint64_t> fired;  // real side: token log
  std::uint64_t next_token{0};       // real side allocations
  std::map<std::uint64_t, TimerId> live_ids;

  std::set<ModelKey> model;  // (at, seq, token)
  std::map<std::uint64_t, ModelKey> model_by_token;
  std::uint64_t model_next_token{0};
  std::uint64_t model_seq{0};
  Time model_now{0};

  std::vector<TimerId> dead_ids;  // fired or cancelled: stale-cancel probes

  /// Real side: schedule at now()+delay; the action logs its token and may
  /// deterministically re-arm a follow-up.
  void real_schedule(Duration delay) {
    const std::uint64_t token = next_token++;
    Harness* self = this;
    const TimerId id = loop.schedule_after(
        delay, [self, token] { self->on_fire(token); }, "prop");
    live_ids[token] = id;
  }

  void on_fire(std::uint64_t token) {
    fired.push_back(token);
    dead_ids.push_back(live_ids.at(token));
    live_ids.erase(token);
    if (wants_followup(token)) real_schedule(followup_delay(token));
  }

  /// Model side: mirror of real_schedule at model time `at`.
  void model_schedule(Time at) {
    const std::uint64_t token = model_next_token++;
    const ModelKey key{at, model_seq++, token};
    model.insert(key);
    model_by_token.emplace(token, key);
  }

  /// Model side: pop everything due by `t` in order, mirroring follow-up
  /// re-arms; returns the expected firing order.
  std::vector<std::uint64_t> model_run_until(Time t) {
    std::vector<std::uint64_t> order;
    while (!model.empty()) {
      const ModelKey key = *model.begin();
      if (std::get<0>(key) > t) break;
      model.erase(model.begin());
      const std::uint64_t token = std::get<2>(key);
      model_by_token.erase(token);
      model_now = std::get<0>(key);
      order.push_back(token);
      if (wants_followup(token)) {
        model_schedule(model_now + followup_delay(token));
      }
    }
    model_now = t;
    return order;
  }

  /// Model side: pop exactly one event (step semantics); empty => no-op.
  std::vector<std::uint64_t> model_step() {
    std::vector<std::uint64_t> order;
    if (model.empty()) return order;
    const ModelKey key = *model.begin();
    model.erase(model.begin());
    const std::uint64_t token = std::get<2>(key);
    model_by_token.erase(token);
    model_now = std::get<0>(key);
    order.push_back(token);
    if (wants_followup(token)) {
      model_schedule(model_now + followup_delay(token));
    }
    return order;
  }

  void check_drain(const std::vector<std::uint64_t>& expected) {
    ASSERT_EQ(fired, expected);
    fired.clear();
    ASSERT_EQ(loop.pending(), model.size());
    ASSERT_EQ(loop.now(), model_now);
    ASSERT_EQ(next_token, model_next_token);
  }
};

/// Delay distribution spanning every placement regime: same-instant,
/// level-0/1 buckets, multi-level cascades, and past-the-page overflow.
Duration pick_delay(std::uint64_t r) {
  const std::uint64_t v = mix(r);
  switch (r % 8) {
    case 0:
      return 0;
    case 1:
    case 2:
      return static_cast<Duration>(v % 2'048);
    case 3:
    case 4:
      return static_cast<Duration>(v % 1'000'000);
    case 5:
      return static_cast<Duration>(v % (1ull << 28));
    case 6:
      return static_cast<Duration>(v % (1ull << 31));
    default:  // beyond the 2^32 us wheel page: overflow heap territory
      return static_cast<Duration>((1ull << 32) + v % (1ull << 33));
  }
}

void run_property(std::uint64_t seed, int ops) {
  Harness h;
  std::uint64_t state = seed;
  const auto rng = [&state] { return state = mix(state); };

  for (int op = 0; op < ops; ++op) {
    const std::uint64_t r = rng();
    switch (r % 16) {
      case 0:
      case 1:
      case 2:
      case 3:
      case 4:
      case 5:
      case 6: {  // schedule
        const Duration delay = pick_delay(rng());
        h.real_schedule(delay);
        h.model_schedule(h.model_now + delay);
        break;
      }
      case 7:
      case 8: {  // cancel a random live timer
        if (h.live_ids.empty()) break;
        auto it = h.live_ids.begin();
        std::advance(it, static_cast<long>(rng() % h.live_ids.size()));
        const std::uint64_t token = it->first;
        h.loop.cancel(it->second);
        h.dead_ids.push_back(it->second);
        h.live_ids.erase(it);
        const ModelKey key = h.model_by_token.at(token);
        h.model.erase(key);
        h.model_by_token.erase(token);
        break;
      }
      case 9: {  // stale cancel: must be a no-op even after slot reuse
        if (h.dead_ids.empty()) break;
        h.loop.cancel(h.dead_ids[rng() % h.dead_ids.size()]);
        break;
      }
      case 10:
      case 11:
      case 12: {  // run_until a nearby horizon
        const Time t = h.model_now + static_cast<Duration>(rng() % 3'000'000);
        h.loop.run_until(t);
        const auto expected = h.model_run_until(t);
        h.check_drain(expected);
        if (::testing::Test::HasFatalFailure()) return;
        break;
      }
      case 13: {  // run_until across a wheel page (overflow migration)
        const Time t = h.model_now +
                       static_cast<Duration>((1ull << 32) + rng() % (1ull << 32));
        h.loop.run_until(t);
        const auto expected = h.model_run_until(t);
        h.check_drain(expected);
        if (::testing::Test::HasFatalFailure()) return;
        break;
      }
      default: {  // step
        const bool stepped = h.loop.step();
        const auto expected = h.model_step();
        ASSERT_EQ(stepped, !expected.empty());
        if (!expected.empty()) {
          // step() advances the clock only to the fired event's deadline.
          ASSERT_EQ(h.fired, expected);
          h.fired.clear();
          ASSERT_EQ(h.loop.now(), h.model_now);
        }
        ASSERT_EQ(h.loop.pending(), h.model.size());
        break;
      }
    }
    ASSERT_EQ(h.loop.pending(), h.model.size()) << "op " << op;
  }

  // Final full drain: everything still pending must come out in model order.
  h.loop.run();
  std::vector<std::uint64_t> expected;
  while (!h.model.empty()) {
    auto chunk = h.model_step();
    expected.insert(expected.end(), chunk.begin(), chunk.end());
  }
  ASSERT_EQ(h.fired, expected);
  ASSERT_EQ(h.loop.pending(), 0u);
  ASSERT_TRUE(h.loop.empty());
}

TEST(SchedulerProperty, WheelMatchesReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    run_property(seed * 0x9E3779B97F4A7C15ull + seed, 2'500);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(SchedulerProperty, CancelHeavyInterleavings) {
  // A second pass biased toward churn: short horizons, many cancels. The
  // different seed stream shifts the op mix; the invariants are identical.
  for (std::uint64_t seed = 100; seed <= 104; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    run_property(mix(seed) | 1, 4'000);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

// ---------------------------------------------------------------------------
// Partitioned-loops property: two timer wheels advanced in conservative
// lookahead windows, with cross-loop handoffs deferred to a mailbox and
// merged at each window barrier in (at, seq, source) order — exactly the
// scheme Simulation's parallel driver uses — must fire the same events at
// the same times, event for event, as one reference wheel that schedules
// every handoff directly.
//
// Timestamp classes keep the comparison exact without an ordering oracle:
// loop-0 local chains live on times ≡ 0 (mod 4), loop-1 local chains on
// ≡ 2; the lookahead is ≡ 1 (mod 4) and handoff delays are lookahead + 4k,
// so arrivals land on ≡ 1 (loop 1) and ≡ 3 (loop 0) and handoff events are
// leaves. No timestamp is ever shared by the two loops, so merging the two
// per-loop logs by time is unambiguous, and same-loop ties always come from
// the same insertion channel in both runs (hence identical seq order).

struct TwoLoopHarness {
  static constexpr Duration kLookahead = 257;  // ≡ 1 (mod 4)

  // Token layout: bit 63 = handoff generation (a leaf), bit 62 = owner loop.
  static constexpr std::uint64_t kHandoffBit = 1ull << 63;
  static constexpr std::uint64_t kOwnerBit = 1ull << 62;
  static int owner(std::uint64_t token) {
    return (token & kOwnerBit) ? 1 : 0;
  }
  static bool is_leaf(std::uint64_t token) {
    return (token & kHandoffBit) != 0;
  }

  // Deterministic per-token decisions, identical on both sides. Local
  // fan-out is subcritical (p = 1/2, one child) so every run terminates.
  static bool wants_local(std::uint64_t t) { return mix(t ^ 0x11) % 2 == 0; }
  static Duration local_delay(std::uint64_t t) {
    return 4 * static_cast<Duration>(1 + mix(t ^ 0x22) % 64);
  }
  static bool wants_handoff(std::uint64_t t) { return mix(t ^ 0x33) % 2 == 0; }
  static Duration handoff_delay(std::uint64_t t) {
    return kLookahead + 4 * static_cast<Duration>(mix(t ^ 0x44) % 64);
  }
  static std::uint64_t child_token(std::uint64_t parent, int owner_loop,
                                   bool handoff) {
    std::uint64_t t = mix(parent ^ (handoff ? 0x55 : 0x66)) >> 2;
    if (owner_loop == 1) t |= kOwnerBit;
    if (handoff) t |= kHandoffBit;
    return t;
  }

  struct Fire {
    Time at;
    std::uint64_t token;
    bool operator==(const Fire& o) const {
      return at == o.at && token == o.token;
    }
  };
  struct Handoff {
    Time at;
    std::uint64_t seq;
    int src;
    std::uint64_t token;
  };

  EventLoop part[2];
  EventLoop ref;
  std::vector<Fire> part_log[2];
  std::vector<Fire> ref_log;
  std::vector<Handoff> mailbox;
  std::uint64_t seq[2] = {0, 0};

  void part_fire(std::uint64_t token) {
    const int o = owner(token);
    const Time at = part[o].now();
    part_log[o].push_back({at, token});
    if (is_leaf(token)) return;
    if (wants_local(token)) {
      const auto c = child_token(token, o, false);
      part[o].schedule_after(local_delay(token),
                             [this, c] { part_fire(c); }, "prop.local");
    }
    if (wants_handoff(token)) {
      const auto c = child_token(token, 1 - o, true);
      mailbox.push_back({at + handoff_delay(token), seq[o]++, o, c});
    }
  }

  void ref_fire(std::uint64_t token) {
    ref_log.push_back({ref.now(), token});
    if (is_leaf(token)) return;
    if (wants_local(token)) {
      const auto c = child_token(token, owner(token), false);
      ref.schedule_after(local_delay(token), [this, c] { ref_fire(c); },
                         "prop.local");
    }
    if (wants_handoff(token)) {
      const auto c = child_token(token, 1 - owner(token), true);
      ref.schedule_after(handoff_delay(token), [this, c] { ref_fire(c); },
                         "prop.handoff");
    }
  }

  void seed_workload(int per_loop) {
    for (int o = 0; o < 2; ++o) {
      for (int i = 0; i < per_loop; ++i) {
        std::uint64_t token =
            mix(0xBEEF + static_cast<std::uint64_t>(o * 1000 + i)) >> 2;
        if (o == 1) token |= kOwnerBit;
        // Class anchors: loop 0 seeds at ≡ 0 (mod 4), loop 1 at ≡ 2.
        const Time at = 4 * static_cast<Time>(i) + (o == 1 ? 2 : 0);
        part[o].schedule_at(at, [this, token] { part_fire(token); }, "prop");
        ref.schedule_at(at, [this, token] { ref_fire(token); }, "prop");
      }
    }
  }

  /// Drive both partition wheels to quiescence with randomized window
  /// widths in [1, kLookahead], merging the mailbox at every barrier.
  void run_partitioned(std::uint64_t state) {
    Time w = 0;
    while (!part[0].empty() || !part[1].empty() || !mailbox.empty()) {
      state = mix(state);
      const auto width = 1 + static_cast<Duration>(state % kLookahead);
      const Time h = w + width;
      part[0].run_until(h);
      part[1].run_until(h);
      std::sort(mailbox.begin(), mailbox.end(),
                [](const Handoff& x, const Handoff& y) {
                  return std::tie(x.at, x.seq, x.src) <
                         std::tie(y.at, y.seq, y.src);
                });
      for (const Handoff& m : mailbox) {
        const int dst = owner(m.token);
        // The conservative safety bound the engine relies on: nothing can
        // arrive in a window that already ran.
        ASSERT_GE(m.at, part[dst].now());
        part[dst].schedule_at(m.at, [this, c = m.token] { part_fire(c); },
                              "prop.merge");
      }
      mailbox.clear();
      w = h;
    }
  }

  /// Drain the reference wheel with randomized run_until horizons (different
  /// stream than the windows — horizons must not matter on either side).
  void run_reference(std::uint64_t state) {
    while (!ref.empty()) {
      state = mix(state);
      ref.run_until(ref.now() + 1 + static_cast<Duration>(state % 1000));
    }
  }
};

void run_two_loop_property(std::uint64_t seed, int per_loop) {
  TwoLoopHarness h;
  h.seed_workload(per_loop);
  h.run_partitioned(seed);
  if (::testing::Test::HasFatalFailure()) return;
  h.run_reference(mix(seed ^ 0xD15EA5E));

  // Merge the two per-loop logs by time: classes guarantee no cross-loop
  // tie, so the comparator never decides an ordering the engine wouldn't.
  std::vector<TwoLoopHarness::Fire> merged;
  merged.reserve(h.part_log[0].size() + h.part_log[1].size());
  std::merge(h.part_log[0].begin(), h.part_log[0].end(),
             h.part_log[1].begin(), h.part_log[1].end(),
             std::back_inserter(merged),
             [](const TwoLoopHarness::Fire& x, const TwoLoopHarness::Fire& y) {
               return x.at < y.at;
             });
  ASSERT_EQ(merged.size(), h.ref_log.size());
  for (std::size_t i = 0; i < merged.size(); ++i) {
    ASSERT_EQ(merged[i].at, h.ref_log[i].at) << "event " << i;
    ASSERT_EQ(merged[i].token, h.ref_log[i].token) << "event " << i;
  }
}

TEST(SchedulerProperty, PartitionedLoopsMatchSingleLoop) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    run_two_loop_property(mix(seed) | 1, 48);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(SchedulerProperty, PartitionedLoopsWithSparseWorkload) {
  // Few seeds, long quiet stretches: many windows fire nothing, and the
  // mailbox is often the only thing keeping the run alive.
  for (std::uint64_t seed = 40; seed <= 43; ++seed) {
    SCOPED_TRACE(::testing::Message() << "seed " << seed);
    run_two_loop_property(mix(seed) | 1, 3);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace rcs::sim
