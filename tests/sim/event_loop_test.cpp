#include "rcs/sim/event_loop.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rcs/common/error.hpp"

namespace rcs::sim {
namespace {

TEST(EventLoop, StartsAtTimeZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, SameTimestampRunsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  Time observed = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_after(50, [&] { observed = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(observed, 150);
}

TEST(EventLoop, SchedulingInThePastThrows) {
  EventLoop loop;
  loop.schedule_at(10, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(5, [] {}), SimError);
  EXPECT_THROW(loop.schedule_after(-1, [] {}), SimError);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const auto id = loop.schedule_at(10, [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelUnknownIdIsNoop) {
  EventLoop loop;
  EXPECT_NO_THROW(loop.cancel(TimerId{999}));
}

TEST(EventLoop, CancelFromWithinEarlierEvent) {
  EventLoop loop;
  bool ran = false;
  const auto victim = loop.schedule_at(20, [&] { ran = true; });
  loop.schedule_at(10, [&] { loop.cancel(victim); });
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, RunUntilAdvancesClockEvenWithoutEvents) {
  EventLoop loop;
  loop.run_until(500);
  EXPECT_EQ(loop.now(), 500);
}

TEST(EventLoop, RunUntilLeavesLaterEventsPending) {
  EventLoop loop;
  int ran = 0;
  loop.schedule_at(10, [&] { ++ran; });
  loop.schedule_at(100, [&] { ++ran; });
  loop.run_until(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.now(), 50);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(ran, 2);
}

TEST(EventLoop, RunForIsRelative) {
  EventLoop loop;
  int ran = 0;
  loop.schedule_at(80, [&] { ++ran; });
  loop.run_for(50);
  EXPECT_EQ(ran, 0);
  loop.run_for(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.now(), 100);
}

TEST(EventLoop, EventsCanCascade) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) loop.schedule_after(1, recurse);
  };
  loop.schedule_after(1, recurse);
  loop.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(loop.now(), 10);
}

TEST(EventLoop, MaxEventsBoundsRun) {
  EventLoop loop;
  int ran = 0;
  for (int i = 0; i < 10; ++i) loop.schedule_at(i, [&] { ++ran; });
  EXPECT_EQ(loop.run(3), 3u);
  EXPECT_EQ(ran, 3);
}

TEST(EventLoop, ProcessedCounterAccumulates) {
  EventLoop loop;
  loop.schedule_at(1, [] {});
  loop.schedule_at(2, [] {});
  loop.run();
  EXPECT_EQ(loop.processed(), 2u);
}

TEST(EventLoop, EmptyActionRejected) {
  EventLoop loop;
  EXPECT_THROW(loop.schedule_at(1, EventLoop::Action{}), LogicError);
}

TEST(EventLoop, PendingExcludesCancelled) {
  EventLoop loop;
  const auto a = loop.schedule_at(10, [] {});
  loop.schedule_at(20, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_FALSE(loop.empty());
}

}  // namespace
}  // namespace rcs::sim
