#include "rcs/sim/event_loop.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "rcs/common/error.hpp"

namespace rcs::sim {
namespace {

TEST(EventLoop, StartsAtTimeZero) {
  EventLoop loop;
  EXPECT_EQ(loop.now(), 0);
  EXPECT_TRUE(loop.empty());
}

TEST(EventLoop, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule_at(30, [&] { order.push_back(3); });
  loop.schedule_at(10, [&] { order.push_back(1); });
  loop.schedule_at(20, [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), 30);
}

TEST(EventLoop, SameTimestampRunsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule_at(10, [&order, i] { order.push_back(i); });
  }
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoop, ScheduleAfterUsesCurrentTime) {
  EventLoop loop;
  Time observed = -1;
  loop.schedule_at(100, [&] {
    loop.schedule_after(50, [&] { observed = loop.now(); });
  });
  loop.run();
  EXPECT_EQ(observed, 150);
}

TEST(EventLoop, SchedulingInThePastThrows) {
  EventLoop loop;
  loop.schedule_at(10, [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(5, [] {}), SimError);
  EXPECT_THROW(loop.schedule_after(-1, [] {}), SimError);
}

TEST(EventLoop, CancelPreventsExecution) {
  EventLoop loop;
  bool ran = false;
  const auto id = loop.schedule_at(10, [&] { ran = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, CancelUnknownIdIsNoop) {
  EventLoop loop;
  EXPECT_NO_THROW(loop.cancel(TimerId{999}));
}

TEST(EventLoop, CancelFromWithinEarlierEvent) {
  EventLoop loop;
  bool ran = false;
  const auto victim = loop.schedule_at(20, [&] { ran = true; });
  loop.schedule_at(10, [&] { loop.cancel(victim); });
  loop.run();
  EXPECT_FALSE(ran);
}

TEST(EventLoop, RunUntilAdvancesClockEvenWithoutEvents) {
  EventLoop loop;
  loop.run_until(500);
  EXPECT_EQ(loop.now(), 500);
}

TEST(EventLoop, RunUntilLeavesLaterEventsPending) {
  EventLoop loop;
  int ran = 0;
  loop.schedule_at(10, [&] { ++ran; });
  loop.schedule_at(100, [&] { ++ran; });
  loop.run_until(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.now(), 50);
  EXPECT_EQ(loop.pending(), 1u);
  loop.run();
  EXPECT_EQ(ran, 2);
}

TEST(EventLoop, RunForIsRelative) {
  EventLoop loop;
  int ran = 0;
  loop.schedule_at(80, [&] { ++ran; });
  loop.run_for(50);
  EXPECT_EQ(ran, 0);
  loop.run_for(50);
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.now(), 100);
}

TEST(EventLoop, EventsCanCascade) {
  EventLoop loop;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) loop.schedule_after(1, recurse);
  };
  loop.schedule_after(1, recurse);
  loop.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(loop.now(), 10);
}

TEST(EventLoop, MaxEventsBoundsRun) {
  EventLoop loop;
  int ran = 0;
  for (int i = 0; i < 10; ++i) loop.schedule_at(i, [&] { ++ran; });
  EXPECT_EQ(loop.run(3), 3u);
  EXPECT_EQ(ran, 3);
}

TEST(EventLoop, ProcessedCounterAccumulates) {
  EventLoop loop;
  loop.schedule_at(1, [] {});
  loop.schedule_at(2, [] {});
  loop.run();
  EXPECT_EQ(loop.processed(), 2u);
}

TEST(EventLoop, EmptyActionRejected) {
  EventLoop loop;
  EXPECT_THROW(loop.schedule_at(1, EventLoop::Action{}), LogicError);
}

TEST(EventLoop, PendingExcludesCancelled) {
  EventLoop loop;
  const auto a = loop.schedule_at(10, [] {});
  loop.schedule_at(20, [] {});
  EXPECT_EQ(loop.pending(), 2u);
  loop.cancel(a);
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_FALSE(loop.empty());
}

TEST(EventLoop, PeakPendingTracksHighWaterMark) {
  EventLoop loop;
  EXPECT_EQ(loop.peak_pending(), 0u);
  for (int i = 0; i < 5; ++i) loop.schedule_at(i + 1, [] {});
  EXPECT_EQ(loop.peak_pending(), 5u);
  loop.run();
  // Draining does not lower the high-water mark.
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_EQ(loop.peak_pending(), 5u);
}

// Cancel/reschedule churn forces slots through the free list over and over;
// every cancelled timer must stay dead and every live one must fire exactly
// once, whatever slot it was recycled into.
TEST(EventLoop, SlotReuseStressKeepsHandlesDistinct) {
  EventLoop loop;
  int fired = 0;
  int dead = 0;
  for (int round = 0; round < 1000; ++round) {
    const auto doomed =
        loop.schedule_after(100, [&dead] { ++dead; }, "doomed");
    const auto kept = loop.schedule_after(1, [&fired] { ++fired; }, "kept");
    loop.cancel(doomed);
    // The doomed slot is now on the free list; this schedule recycles it.
    loop.schedule_after(2, [&fired] { ++fired; }, "recycled");
    // Cancelling the stale id again must not kill the recycled occupant.
    loop.cancel(doomed);
    (void)kept;
    loop.run();
  }
  EXPECT_EQ(fired, 2000);
  EXPECT_EQ(dead, 0);
}

// A TimerId from a previous occupancy of the same slot (old generation) is
// stale: cancelling it must be a no-op for the current occupant.
TEST(EventLoop, StaleOldGenerationIdNeverCancelsNewOccupant) {
  EventLoop loop;
  bool first_ran = false;
  const auto first = loop.schedule_at(1, [&] { first_ran = true; });
  loop.run();
  EXPECT_TRUE(first_ran);

  // The slot was released by running; this reuses it with a new generation.
  bool second_ran = false;
  loop.schedule_at(2, [&] { second_ran = true; });
  loop.cancel(first);  // stale: same slot index, old generation
  loop.run();
  EXPECT_TRUE(second_ran);
}

// Regression: release must bump the generation. If it did not, a heap entry
// surviving a cancel would find the recycled slot "live" with a matching
// generation and fire the wrong action (or a cancelled one).
TEST(EventLoop, GenerationBumpsOnEveryRelease) {
  EventLoop loop;
  int wrong = 0;
  int right = 0;
  // Schedule and cancel: the heap entry for `cancelled` stays queued but its
  // slot is released and recycled by the next schedule at the same time.
  const auto cancelled = loop.schedule_at(5, [&wrong] { ++wrong; });
  loop.cancel(cancelled);
  loop.schedule_at(5, [&right] { ++right; });
  loop.run();
  EXPECT_EQ(wrong, 0);
  EXPECT_EQ(right, 1);

  // And a full cycle on the recycled slot still works.
  bool again = false;
  loop.schedule_at(6, [&again] { again = true; });
  loop.run();
  EXPECT_TRUE(again);
}

}  // namespace
}  // namespace rcs::sim
