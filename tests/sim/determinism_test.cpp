// Reproducibility: the whole point of running the paper's testbed as a
// seeded discrete-event simulation is that identical seeds produce
// bit-identical executions — same event interleavings, same jitter, same
// fault arrivals, same measured numbers.
#include <gtest/gtest.h>

#include <vector>

#include "rcs/sim/fault_injector.hpp"
#include "rcs/sim/host.hpp"
#include "rcs/sim/simulation.hpp"

namespace rcs::sim {
namespace {

/// A deterministic "trace" of a small messaging scenario with jitter, drops
/// and faults: every delivery is recorded as (time, payload int).
std::vector<std::pair<Time, std::int64_t>> run_trace(std::uint64_t seed) {
  Simulation sim(seed);
  Host& a = sim.add_host("a");
  Host& b = sim.add_host("b");
  auto& link = sim.network().link(a.id(), b.id());
  link.jitter = 0.2;
  link.drop_rate = 0.1;
  FaultInjector inject(sim);
  inject.transient_campaign(b.id(), 0, 5 * kSecond, 2.0);

  std::vector<std::pair<Time, std::int64_t>> trace;
  b.register_handler("m", [&](const Message& m) {
    Value v = m.payload;
    v = FaultInjector::apply(b, std::move(v), sim.rng());
    trace.emplace_back(sim.now(), v.is_int() ? v.as_int() : -1);
  });
  for (int i = 0; i < 50; ++i) {
    sim.schedule_at(i * 50 * kMillisecond, [&, i] {
      sim.network().send({a.id(), b.id(), "m", Payload{Value(i)}});
    });
  }
  sim.run_for(10 * kSecond);
  return trace;
}

TEST(Determinism, SameSeedSameTrace) {
  const auto first = run_trace(123);
  const auto second = run_trace(123);
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second) << "seeded runs must replay bit-identically";
}

TEST(Determinism, DifferentSeedDifferentTrace) {
  EXPECT_NE(run_trace(123), run_trace(124));
}

}  // namespace
}  // namespace rcs::sim
