#include "rcs/sim/fault_injector.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "rcs/sim/host.hpp"
#include "rcs/sim/simulation.hpp"

namespace rcs::sim {
namespace {

struct FaultFixture : ::testing::Test {
  Simulation sim{11};
  Host& h = sim.add_host("victim");
  FaultInjector inject{sim};
};

TEST_F(FaultFixture, CrashAtTime) {
  inject.crash_at(h.id(), 100);
  sim.run_until(99);
  EXPECT_TRUE(h.alive());
  sim.run_until(100);
  EXPECT_FALSE(h.alive());
}

TEST_F(FaultFixture, RestartAtTime) {
  inject.crash_at(h.id(), 100);
  inject.restart_at(h.id(), 200);
  sim.run_until(150);
  EXPECT_FALSE(h.alive());
  sim.run_until(200);
  EXPECT_TRUE(h.alive());
}

TEST_F(FaultFixture, RestartOfAliveHostIsNoop) {
  inject.restart_at(h.id(), 50);
  EXPECT_NO_THROW(sim.run());
  EXPECT_TRUE(h.alive());
}

TEST_F(FaultFixture, TransientArmsPendingCount) {
  inject.transient_at(h.id(), 10, 2);
  sim.run();
  EXPECT_EQ(h.faults().transient_pending, 2);
}

TEST_F(FaultFixture, PermanentTogglesFlag) {
  inject.permanent_at(h.id(), 10, true);
  inject.permanent_at(h.id(), 20, false);
  sim.run_until(15);
  EXPECT_TRUE(h.faults().permanent);
  sim.run_until(25);
  EXPECT_FALSE(h.faults().permanent);
}

TEST_F(FaultFixture, ApplyConsumesOneTransientPerComputation) {
  h.faults().transient_pending = 1;
  const Value good(std::int64_t{100});
  const Value first = FaultInjector::apply(h, good, sim.rng());
  EXPECT_NE(first, good) << "armed transient must corrupt";
  const Value second = FaultInjector::apply(h, good, sim.rng());
  EXPECT_EQ(second, good) << "transient fires only once";
  EXPECT_EQ(h.faults().corruptions_applied, 1u);
}

TEST_F(FaultFixture, ApplyPermanentCorruptsEveryTime) {
  h.faults().permanent = true;
  const Value good(std::int64_t{100});
  for (int i = 0; i < 5; ++i) {
    EXPECT_NE(FaultInjector::apply(h, good, sim.rng()), good);
  }
  EXPECT_EQ(h.faults().corruptions_applied, 5u);
}

TEST_F(FaultFixture, CorruptChangesEveryScalarType) {
  Rng rng(3);
  EXPECT_NE(FaultInjector::corrupt(Value(std::int64_t{7}), rng), Value(std::int64_t{7}));
  EXPECT_NE(FaultInjector::corrupt(Value(true), rng), Value(true));
  EXPECT_NE(FaultInjector::corrupt(Value(2.5), rng), Value(2.5));
  EXPECT_NE(FaultInjector::corrupt(Value("abc"), rng), Value("abc"));
  EXPECT_NE(FaultInjector::corrupt(Value(Bytes{1, 2}), rng), Value(Bytes{1, 2}));
  EXPECT_NE(FaultInjector::corrupt(Value{}, rng), Value{});
}

TEST_F(FaultFixture, CorruptContainersChangesOneElement) {
  Rng rng(5);
  Value list(ValueList{Value(1), Value(2), Value(3)});
  const Value corrupted = FaultInjector::corrupt(list, rng);
  ASSERT_TRUE(corrupted.is_list());
  ASSERT_EQ(corrupted.size(), 3u);
  int diffs = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    if (corrupted.at(i) != list.at(i)) ++diffs;
  }
  EXPECT_EQ(diffs, 1);

  Value map = Value::map();
  map.set("a", 1).set("b", 2);
  const Value corrupted_map = FaultInjector::corrupt(map, rng);
  EXPECT_NE(corrupted_map, map);
  EXPECT_EQ(corrupted_map.size(), 2u);
}

TEST_F(FaultFixture, CorruptEmptyContainersStillDiffers) {
  Rng rng(9);
  EXPECT_NE(FaultInjector::corrupt(Value::list(), rng), Value::list());
  EXPECT_NE(FaultInjector::corrupt(Value::map(), rng), Value::map());
  EXPECT_NE(FaultInjector::corrupt(Value(std::string{}), rng), Value(std::string{}));
  EXPECT_NE(FaultInjector::corrupt(Value(Bytes{}), rng), Value(Bytes{}));
}

TEST_F(FaultFixture, CampaignArrivalsFollowRate) {
  inject.transient_campaign(h.id(), 0, 100 * kSecond, 1.0);  // ~100 faults
  sim.run();
  const auto armed = h.faults().transient_pending;
  EXPECT_GT(armed, 60);
  EXPECT_LT(armed, 140);
}

TEST_F(FaultFixture, CampaignWithNonPositiveRateIsNoop) {
  // Regression: a zero/negative/NaN rate used to divide the exponential
  // sampler and either spin forever or dump the whole campaign on one
  // instant, depending on the draw. It must arm nothing.
  inject.transient_campaign(h.id(), 0, 10 * kSecond, 0.0);
  inject.transient_campaign(h.id(), 0, 10 * kSecond, -3.5);
  inject.transient_campaign(h.id(), 0, 10 * kSecond,
                            std::numeric_limits<double>::quiet_NaN());
  EXPECT_EQ(sim.run(), 0u) << "no fault events may be scheduled";
  EXPECT_EQ(h.faults().transient_pending, 0);
}

TEST_F(FaultFixture, CampaignWithHugeRateTerminatesAndStaysBounded) {
  // Regression: an enormous rate produces ~zero gaps; every draw must still
  // advance time by at least one tick or scheduling never reaches `to`.
  const Time to = 200;  // 200 ticks
  inject.transient_campaign(h.id(), 0, to, 1e18);
  sim.run();
  EXPECT_GT(h.faults().transient_pending, 0);
  EXPECT_LE(h.faults().transient_pending, static_cast<int>(to))
      << "at most one arrival per tick";
}

TEST_F(FaultFixture, ApplyWithoutFaultsIsIdentity) {
  const Value v(ValueList{Value("ok"), Value(1)});
  EXPECT_EQ(FaultInjector::apply(h, v, sim.rng()), v);
  EXPECT_EQ(h.faults().corruptions_applied, 0u);
}

TEST_F(FaultFixture, PartitionWindowDropsAndHeals) {
  Host& peer = sim.add_host("peer");
  int delivered = 0;
  peer.register_handler("m", [&](const Message&) { ++delivered; });
  sim.network().default_link().drop_rate = 0.0;

  inject.partition_at(h.id(), peer.id(), 100 * kMillisecond,
                      300 * kMillisecond);
  for (int i = 0; i < 5; ++i) {
    sim.schedule_at(i * 100 * kMillisecond + 50 * kMillisecond, [&] {
      sim.network().send({h.id(), peer.id(), "m", Payload{Value(1)}});
    });
  }
  sim.run();
  // Sends at 150ms and 250ms fall inside the window; the rest deliver.
  EXPECT_EQ(delivered, 3);
  EXPECT_FALSE(sim.network().link(h.id(), peer.id()).partitioned);
  EXPECT_EQ(sim.network().link_stats(h.id(), peer.id()).dropped, 2u);
}

TEST_F(FaultFixture, DegradeWindowRestoresPreviousParams) {
  Host& peer = sim.add_host("peer");
  auto& link = sim.network().link(h.id(), peer.id());
  link.latency = 3 * kMillisecond;
  link.drop_rate = 0.0;

  LinkParams burst;
  burst.latency = 50 * kMillisecond;
  burst.drop_rate = 1.0;
  burst.duplicate_rate = 0.5;
  inject.degrade_link_at(h.id(), peer.id(), 100 * kMillisecond,
                         200 * kMillisecond, burst);

  sim.run_until(150 * kMillisecond);
  EXPECT_EQ(sim.network().link(h.id(), peer.id()).drop_rate, 1.0);
  sim.run_until(250 * kMillisecond);
  EXPECT_EQ(sim.network().link(h.id(), peer.id()).drop_rate, 0.0);
  EXPECT_EQ(sim.network().link(h.id(), peer.id()).latency, 3 * kMillisecond);
}

TEST_F(FaultFixture, DegradeWindowPreservesOverlappingPartition) {
  Host& peer = sim.add_host("peer");
  inject.partition_at(h.id(), peer.id(), 0, 400 * kMillisecond);
  inject.degrade_link_at(h.id(), peer.id(), 100 * kMillisecond,
                         200 * kMillisecond, LinkParams{});
  sim.run_until(150 * kMillisecond);
  EXPECT_TRUE(sim.network().link(h.id(), peer.id()).partitioned)
      << "degrade must not heal a concurrent partition";
  sim.run_until(250 * kMillisecond);
  EXPECT_TRUE(sim.network().link(h.id(), peer.id()).partitioned);
  sim.run_until(450 * kMillisecond);
  EXPECT_FALSE(sim.network().link(h.id(), peer.id()).partitioned);
}

TEST_F(FaultFixture, OverlappingDegradeWindowsRestoreOriginal) {
  // Regression: with staggered windows A=[100,250) and B=[150,300), the old
  // restore logic let B capture A's degraded parameters as its "original"
  // and re-apply them forever once B closed. The injector now
  // reference-counts windows and restores the pristine parameters exactly
  // when the last one closes.
  Host& peer = sim.add_host("peer");
  auto& link = sim.network().link(h.id(), peer.id());
  link.latency = 3 * kMillisecond;
  link.drop_rate = 0.0;

  LinkParams burst_a;
  burst_a.latency = 50 * kMillisecond;
  burst_a.drop_rate = 0.8;
  LinkParams burst_b;
  burst_b.latency = 80 * kMillisecond;
  burst_b.drop_rate = 0.5;
  inject.degrade_link_at(h.id(), peer.id(), 100 * kMillisecond,
                         250 * kMillisecond, burst_a);
  inject.degrade_link_at(h.id(), peer.id(), 150 * kMillisecond,
                         300 * kMillisecond, burst_b);

  sim.run_until(200 * kMillisecond);  // both open: B applied last
  EXPECT_EQ(sim.network().link(h.id(), peer.id()).drop_rate, 0.5);
  sim.run_until(275 * kMillisecond);  // A closed, B still open
  EXPECT_EQ(sim.network().link(h.id(), peer.id()).drop_rate, 0.5)
      << "closing the first window must not heal the link under the second";
  sim.run_until(350 * kMillisecond);  // both closed
  EXPECT_EQ(sim.network().link(h.id(), peer.id()).drop_rate, 0.0)
      << "last window must restore the pristine parameters";
  EXPECT_EQ(sim.network().link(h.id(), peer.id()).latency, 3 * kMillisecond);
}

TEST_F(FaultFixture, IdenticalOverlappingDegradeWindowsAreIdempotent) {
  // Two identical windows over the same span: exercised by chaos schedules
  // that draw the same episode twice. The link must end pristine.
  Host& peer = sim.add_host("peer");
  auto& link = sim.network().link(h.id(), peer.id());
  link.latency = 3 * kMillisecond;

  LinkParams burst;
  burst.latency = 40 * kMillisecond;
  burst.drop_rate = 1.0;
  inject.degrade_link_at(h.id(), peer.id(), 100 * kMillisecond,
                         200 * kMillisecond, burst);
  inject.degrade_link_at(h.id(), peer.id(), 100 * kMillisecond,
                         200 * kMillisecond, burst);
  sim.run_until(150 * kMillisecond);
  EXPECT_EQ(sim.network().link(h.id(), peer.id()).drop_rate, 1.0);
  sim.run_until(250 * kMillisecond);
  EXPECT_EQ(sim.network().link(h.id(), peer.id()).drop_rate, 0.0);
  EXPECT_EQ(sim.network().link(h.id(), peer.id()).latency, 3 * kMillisecond);
}

TEST_F(FaultFixture, CorruptFuzzPreservesEncodability) {
  // Whatever corrupt() does to a Value, the result must stay a well-formed
  // Value: encodable, decodable, and round-trip stable — the checker and the
  // wire layer both rely on corrupted payloads still being valid payloads.
  Rng rng(0xC0FFEE);
  std::vector<Value> seeds;
  seeds.emplace_back();
  seeds.emplace_back(true);
  seeds.emplace_back(std::int64_t{42});
  seeds.emplace_back(3.25);
  seeds.emplace_back("the quick brown fox");
  seeds.emplace_back(Bytes{0x00, 0xFF, 0x7E});
  seeds.push_back(Value::list());
  seeds.push_back(Value::map());
  seeds.push_back(Value::map()
                      .set("op", "incr")
                      .set("key", "ctr")
                      .set("nested", Value(ValueList{Value(1), Value("x")})));
  for (const auto& seed : seeds) {
    Value v = seed;
    for (int round = 0; round < 200; ++round) {
      v = FaultInjector::corrupt(v, rng);
      const Bytes encoded = v.encode();
      const Value decoded = Value::decode(encoded);
      ASSERT_EQ(decoded, v) << "corrupted value must round-trip: "
                            << v.to_string();
      ASSERT_EQ(decoded.encode(), encoded);
    }
  }
}

}  // namespace
}  // namespace rcs::sim
