// RateSampler / MeterRateSampler: the one audited delta-and-divide path
// shared by the monitoring probes and the load harness. The edge cases here
// (priming, empty window, counter regression) are exactly the ones that
// previously produced an astronomic unsigned wrap and a spurious saturation
// trigger.
#include <gtest/gtest.h>

#include "rcs/sim/resources.hpp"

namespace rcs::sim::testing {
namespace {

TEST(RateSampler, FirstObservationPrimesAtRateZero) {
  RateSampler sampler;
  EXPECT_DOUBLE_EQ(sampler.sample(5 * kSecond, 1'000'000), 0.0)
      << "no window exists before the baseline";
}

TEST(RateSampler, SteadyCounterYieldsPerSecondRate) {
  RateSampler sampler;
  (void)sampler.sample(0, 0);
  EXPECT_DOUBLE_EQ(sampler.sample(2 * kSecond, 500), 250.0);
  EXPECT_DOUBLE_EQ(sampler.sample(3 * kSecond, 1500), 1000.0)
      << "each window is measured against the previous observation only";
}

TEST(RateSampler, SubSecondWindowScalesUp) {
  RateSampler sampler;
  (void)sampler.sample(0, 0);
  EXPECT_DOUBLE_EQ(sampler.sample(500 * kMillisecond, 100), 200.0);
}

TEST(RateSampler, EmptyWindowReadsZero) {
  RateSampler sampler;
  (void)sampler.sample(kSecond, 100);
  EXPECT_DOUBLE_EQ(sampler.sample(kSecond, 900), 0.0)
      << "now <= last observation: no time elapsed, no rate";
  EXPECT_DOUBLE_EQ(sampler.sample(2 * kSecond, 1900), 1000.0)
      << "and the zero-width observation re-baselined the counter";
}

TEST(RateSampler, CounterRegressionRebaselinesInsteadOfWrapping) {
  RateSampler sampler;
  (void)sampler.sample(0, 0);
  (void)sampler.sample(kSecond, 10'000);
  // Counter reset (Network::reset_stats, host restart wiping a meter).
  EXPECT_DOUBLE_EQ(sampler.sample(2 * kSecond, 50), 0.0)
      << "a regression must read as an empty window, not a wrap";
  EXPECT_DOUBLE_EQ(sampler.sample(3 * kSecond, 1050), 1000.0)
      << "the regressed value became the new baseline";
}

TEST(RateSampler, ResetForgetsTheBaseline) {
  RateSampler sampler;
  (void)sampler.sample(0, 0);
  sampler.reset();
  EXPECT_DOUBLE_EQ(sampler.sample(kSecond, 700), 0.0) << "primes afresh";
  EXPECT_DOUBLE_EQ(sampler.sample(2 * kSecond, 1400), 700.0);
}

TEST(MeterRateSampler, DerivesBytesAndCpuUtilization) {
  ResourceMeter meter;
  MeterRateSampler sampler;
  (void)sampler.sample(0, meter);

  meter.charge_sent(4'000);
  meter.charge_received(1'000);
  meter.charge_cpu(500 * kMillisecond);  // half a cpu-second...
  const MeterRates rates = sampler.sample(kSecond, meter);  // ...in one second
  EXPECT_DOUBLE_EQ(rates.bytes_sent_per_s, 4'000.0);
  EXPECT_DOUBLE_EQ(rates.bytes_received_per_s, 1'000.0);
  EXPECT_DOUBLE_EQ(rates.cpu_utilization, 0.5);
}

TEST(MeterRateSampler, SaturatedCpuReadsAsOne) {
  ResourceMeter meter;
  MeterRateSampler sampler;
  (void)sampler.sample(0, meter);
  // A serialized CPU can execute at most one cpu-second per second; the
  // meter records execution time post speed-division, so utilization 1.0 is
  // the ceiling at ANY cpu_speed.
  meter.charge_cpu(2 * kSecond);
  EXPECT_DOUBLE_EQ(sampler.sample(2 * kSecond, meter).cpu_utilization, 1.0);
}

}  // namespace
}  // namespace rcs::sim::testing
