// Conservative parallel DES at the Simulation level.
//
// The determinism contract under test: a partitioned run's behavior is a
// pure function of (seed, partition assignment) — never of the thread count
// — and an unpartitioned simulation is bit-for-bit the serial one. The
// workload is a multi-group deployment shaped like the paper's FTM groups:
// within a group hosts bounce balls over a fast link; a gateway per group
// forwards a token around a cross-group ring over slow (lookahead-defining)
// links.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "rcs/common/error.hpp"
#include "rcs/common/strf.hpp"
#include "rcs/sim/host.hpp"
#include "rcs/sim/simulation.hpp"

namespace rcs::sim {
namespace {

constexpr Duration kIntraLatency = 1 * kMillisecond;
constexpr Duration kCrossLatency = 20 * kMillisecond;

struct Deployment {
  Simulation sim;
  std::vector<Host*> hosts;
  std::vector<HostId> gateways;  // hosts[g * per_group] per group
  std::vector<std::uint64_t> delivered;
  int groups;
  int per_group;

  Deployment(int groups_n, int per_group_n, bool partitioned,
             std::uint64_t seed = 7, double jitter = 0.0)
      : sim(seed), groups(groups_n), per_group(per_group_n) {
    auto& net = sim.network();
    net.default_link().jitter = jitter;
    net.default_link().drop_rate = 0.0;

    for (int g = 0; g < groups; ++g) {
      for (int i = 0; i < per_group; ++i) {
        Host& h = sim.add_host(strf("g", g, ".h", i));
        hosts.push_back(&h);
        if (partitioned) sim.set_partition(h.id(), g);
      }
      gateways.push_back(hosts[static_cast<std::size_t>(g * per_group)]->id());
    }
    delivered.assign(hosts.size(), 0);

    // Materialize every link the run uses (the table freezes during
    // multi-partition windows): full intra-group mesh + the gateway ring.
    for (int g = 0; g < groups; ++g) {
      for (int i = 0; i < per_group; ++i) {
        for (int j = i + 1; j < per_group; ++j) {
          auto& l = net.link(host(g, i), host(g, j));
          l.latency = kIntraLatency;
        }
      }
    }
    for (int g = 0; g < groups; ++g) {
      auto& l = net.link(gateways[static_cast<std::size_t>(g)],
                         gateways[static_cast<std::size_t>((g + 1) % groups)]);
      l.latency = kCrossLatency;
    }

    for (int g = 0; g < groups; ++g) {
      for (int i = 0; i < per_group; ++i) {
        Host* h = hosts[index(g, i)];
        const HostId next = host(g, (i + 1) % per_group);
        h->register_handler("ball", [this, h, next](const Message&) {
          ++delivered[h->id().value()];
          h->send(next, "ball", Value(std::int64_t{1}));
        });
      }
      Host* gw = hosts[index(g, 0)];
      const HostId next_gw =
          gateways[static_cast<std::size_t>((g + 1) % groups)];
      gw->register_handler("token", [this, gw, next_gw](const Message& m) {
        ++delivered[gw->id().value()];
        gw->send(next_gw, "token", m.payload);
      });
    }
  }

  [[nodiscard]] std::size_t index(int g, int i) const {
    return static_cast<std::size_t>(g * per_group + i);
  }
  [[nodiscard]] HostId host(int g, int i) const {
    return hosts[index(g, i)]->id();
  }

  /// Start the workload: `balls` ping-pong chains per group plus the ring
  /// token. Kicks are scheduled on each host's own wheel, as a deployed
  /// runtime would from its setup timers.
  void kick(int balls = 2) {
    for (int g = 0; g < groups; ++g) {
      for (int b = 0; b < balls && b < per_group; ++b) {
        Host* h = hosts[index(g, b)];
        const HostId to = host(g, (b + 1) % per_group);
        sim.loop_for(h->id()).schedule_at(
            (b + 1) * 100, [h, to] { h->send(to, "ball", Value(std::int64_t{0})); },
            "kick.ball");
      }
      Host* gw = hosts[index(g, 0)];
      const HostId next_gw =
          gateways[static_cast<std::size_t>((g + 1) % groups)];
      if (g == 0) {
        sim.loop_for(gw->id()).schedule_at(
            50, [gw, next_gw] { gw->send(next_gw, "token", Value(std::int64_t{0})); },
            "kick.token");
      }
    }
  }

  [[nodiscard]] std::uint64_t total_delivered() const {
    std::uint64_t sum = 0;
    for (const auto d : delivered) sum += d;
    return sum;
  }
};

TEST(ParallelSim, PartitionedRunMatchesSerialRun) {
  // Jitter 0 so neither side consumes randomness: the event timeline is then
  // identical between the one-wheel serial run and the partitioned run, and
  // every per-host counter must agree exactly.
  Deployment serial(4, 3, /*partitioned=*/false);
  serial.kick();
  serial.sim.run_until(2 * kSecond);

  for (const int threads : {1, 4}) {
    Deployment part(4, 3, /*partitioned=*/true);
    part.sim.set_threads(threads);
    part.kick();
    part.sim.run_until(2 * kSecond);
    EXPECT_EQ(part.delivered, serial.delivered) << "threads=" << threads;
    EXPECT_EQ(part.sim.network().total_bytes(),
              serial.sim.network().total_bytes());
    EXPECT_GT(part.total_delivered(), 0u);
  }
}

TEST(ParallelSim, ThreadCountNeverChangesAnything) {
  // With jitter on, the run consumes per-partition rng streams; the streams
  // (and everything downstream of them, including the metrics export) are a
  // function of the partition assignment, so any worker count replays the
  // identical run.
  std::string baseline_metrics;
  std::vector<std::uint64_t> baseline_delivered;
  Simulation::ParallelStats baseline_stats{};
  for (const int threads : {1, 3}) {
    Deployment d(3, 4, /*partitioned=*/true, /*seed=*/21, /*jitter=*/0.05);
    d.sim.set_threads(threads);
    d.kick(3);
    d.sim.run_until(3 * kSecond);
    const std::string metrics = d.sim.metrics().to_json_lines("sim");
    if (threads == 1) {
      baseline_metrics = metrics;
      baseline_delivered = d.delivered;
      baseline_stats = d.sim.parallel_stats();
      EXPECT_GT(d.total_delivered(), 0u);
      continue;
    }
    EXPECT_EQ(d.delivered, baseline_delivered) << "threads=" << threads;
    EXPECT_EQ(metrics, baseline_metrics) << "threads=" << threads;
    const auto& stats = d.sim.parallel_stats();
    EXPECT_EQ(stats.windows, baseline_stats.windows);
    EXPECT_EQ(stats.widened_windows, baseline_stats.widened_windows);
    EXPECT_EQ(stats.idle_jumps, baseline_stats.idle_jumps);
    EXPECT_EQ(stats.merged_deliveries, baseline_stats.merged_deliveries);
    EXPECT_EQ(stats.parallel_events, baseline_stats.parallel_events);
    EXPECT_EQ(stats.makespan_events, baseline_stats.makespan_events);
  }
}

TEST(ParallelSim, ThreadedUnpartitionedRunMatchesSerial) {
  // threads > 0 with a single partition routes the one wheel through the
  // worker pool: the exact serial event sequence on another thread.
  Deployment serial(2, 2, /*partitioned=*/false);
  serial.kick();
  serial.sim.run_until(1 * kSecond);

  Deployment pooled(2, 2, /*partitioned=*/false);
  pooled.sim.set_threads(2);
  pooled.kick();
  pooled.sim.run_until(1 * kSecond);
  EXPECT_EQ(pooled.delivered, serial.delivered);
  EXPECT_EQ(pooled.sim.metrics().to_json_lines("sim"),
            serial.sim.metrics().to_json_lines("sim"));
}

TEST(ParallelSim, ParallelStatsMeasureCriticalPath) {
  Deployment d(4, 3, /*partitioned=*/true);
  d.sim.set_threads(2);
  d.kick();
  d.sim.run_until(2 * kSecond);
  const auto& stats = d.sim.parallel_stats();
  EXPECT_GT(stats.windows, 0u);
  EXPECT_GT(stats.merged_deliveries, 0u) << "ring tokens cross partitions";
  EXPECT_GT(stats.parallel_events, 0u);
  EXPECT_GE(stats.parallel_events, stats.makespan_events);
  // Four balanced groups: the critical-path speedup must show real
  // parallelism, not just bookkeeping.
  EXPECT_GT(stats.critical_path_speedup(), 2.5);
}

TEST(ParallelSim, MergedDeliveryExactlyAtHorizonStillRuns) {
  // run_until(t) includes events at t; a cross-partition delivery landing
  // exactly on the horizon must not be stranded in the next window.
  Simulation sim(3);
  Host& a = sim.add_host("a");
  Host& b = sim.add_host("b");
  sim.set_partition(a.id(), 0);
  sim.set_partition(b.id(), 1);
  auto& link = sim.network().link(a.id(), b.id());
  link.latency = 10 * kMillisecond;
  link.jitter = 0.0;
  link.bandwidth_bps = 1e18;  // transfer time rounds to zero

  int got = 0;
  b.register_handler("x", [&](const Message&) { ++got; });
  sim.loop_for(a.id()).schedule_at(
      0, [&] { a.send(b.id(), "x", Value(std::int64_t{1})); }, "kick");
  sim.run_until(10 * kMillisecond);
  EXPECT_EQ(got, 1);
}

TEST(ParallelSim, FrozenLinkTableRejectsUnmaterializedLinks) {
  Simulation sim(5);
  Host& a = sim.add_host("a");
  Host& b = sim.add_host("b");
  Host& c = sim.add_host("c");
  sim.set_partition(a.id(), 0);
  sim.set_partition(b.id(), 1);
  sim.set_partition(c.id(), 1);
  sim.network().link(a.id(), b.id());  // cross link materialized (lookahead)
  // b<->c intentionally NOT materialized.
  int got = 0;
  c.register_handler("x", [&](const Message&) { ++got; });
  sim.loop_for(b.id()).schedule_at(
      100, [&] { b.send(c.id(), "x", Value(std::int64_t{1})); }, "kick");
  EXPECT_THROW(sim.run_until(1 * kSecond), SimError)
      << "touching an unmaterialized link during a partitioned window must "
         "throw, not race a rehash";
  EXPECT_EQ(got, 0);
}

TEST(ParallelSim, ZeroLookaheadIsRejected) {
  Simulation sim(5);
  Host& a = sim.add_host("a");
  Host& b = sim.add_host("b");
  sim.set_partition(a.id(), 0);
  sim.set_partition(b.id(), 1);
  sim.network().link(a.id(), b.id()).latency = 0;
  EXPECT_THROW(sim.run_until(1 * kSecond), Error)
      << "conservative execution requires positive cross-partition latency";
}

TEST(ParallelSim, DrainRunIsSerialOnly) {
  Simulation sim(5);
  Host& a = sim.add_host("a");
  Host& b = sim.add_host("b");
  sim.set_partition(a.id(), 0);
  sim.set_partition(b.id(), 1);
  EXPECT_THROW(sim.run(), Error)
      << "a partitioned simulation has no global idle instant";
}

TEST(ParallelSim, PartitionAssignmentValidation) {
  Simulation sim(5);
  Host& a = sim.add_host("a");
  EXPECT_THROW(sim.set_partition(HostId{42}, 0), Error);
  EXPECT_THROW(sim.set_partition(a.id(), -1), Error);
  EXPECT_NO_THROW(sim.set_partition(a.id(), 0));
  EXPECT_EQ(sim.partition_count(), 1);
  EXPECT_THROW(sim.set_threads(-1), Error);
}

TEST(ParallelSim, AdaptiveOnMatchesAdaptiveOffExactly) {
  // The adaptive schedule (widen on empty merges, narrow on the first
  // nonempty one) is a pure function of counted merge history, so every
  // counted quantity must be byte-identical to a run with adaptive windows
  // forced off — the only legal difference is coordination cost.
  std::string off_metrics;
  std::vector<std::uint64_t> off_delivered;
  Simulation::ParallelStats off_stats{};
  std::uint64_t off_rendezvous = 0;
  for (const bool adaptive : {false, true}) {
    Deployment d(3, 3, /*partitioned=*/true, /*seed=*/33, /*jitter=*/0.02);
    // Slow down two ring hops: the token then spends five lookahead windows
    // in flight, producing empty-merge streaks long enough that widening
    // actually fuses rounds (with uniform hops every window merges a
    // delivery and the multiplier never leaves 1).
    d.sim.network().link(d.gateways[1], d.gateways[2]).latency =
        100 * kMillisecond;
    d.sim.network().link(d.gateways[2], d.gateways[0]).latency =
        100 * kMillisecond;
    d.sim.set_adaptive_windows(adaptive);
    d.sim.set_threads(2);
    d.kick(1);
    d.sim.run_until(4 * kSecond);
    const std::string metrics = d.sim.metrics().to_json_lines("sim");
    const auto& stats = d.sim.parallel_stats();
    if (!adaptive) {
      off_metrics = metrics;
      off_delivered = d.delivered;
      off_stats = stats;
      off_rendezvous = d.sim.barrier_stats().rendezvous;
      EXPECT_EQ(stats.widened_windows, 0u);
      EXPECT_EQ(stats.idle_jumps, 0u);
      continue;
    }
    EXPECT_EQ(d.delivered, off_delivered);
    EXPECT_EQ(metrics, off_metrics);
    EXPECT_EQ(stats.merged_deliveries, off_stats.merged_deliveries);
    EXPECT_EQ(stats.parallel_events, off_stats.parallel_events);
    EXPECT_EQ(stats.makespan_events, off_stats.makespan_events);
    EXPECT_EQ(stats.critical_path_speedup(), off_stats.critical_path_speedup());
    // The whole point of fusing: strictly fewer coordinator round trips.
    EXPECT_GT(stats.widened_windows, 0u);
    EXPECT_LT(d.sim.barrier_stats().rendezvous, off_rendezvous);
    EXPECT_LE(stats.windows, off_stats.windows);
  }
}

TEST(ParallelSim, AdaptiveSparseTrafficWidensJumpsAndStaysExact) {
  // Randomized sparse cross-partition traffic: bursts of sub-lookahead gaps
  // (forcing narrow-back) interleaved with quiet stretches from tens of
  // seconds up to hours — some wider than the 2^32 us wheel page, so idle
  // jumps land in (and drain through) overflow-page territory. The
  // partitioned adaptive run must replay the serial reference exactly.
  constexpr int kSends = 48;
  const auto build = [](Simulation& sim, std::vector<std::uint64_t>& got,
                        bool partitioned) {
    Host& a = sim.add_host("a");
    Host& b = sim.add_host("b");
    if (partitioned) {
      sim.set_partition(a.id(), 0);
      sim.set_partition(b.id(), 1);
    }
    auto& link = sim.network().link(a.id(), b.id());
    link.latency = 20 * kMillisecond;
    link.jitter = 0.0;
    b.register_handler("ping",
                       [hb = &b, ga = &got, pa = a.id()](const Message& m) {
                         ++(*ga)[1];
                         // Reply: traffic flows both directions across the cut.
                         hb->send(pa, "pong", m.payload);
                       });
    a.register_handler("pong", [ga = &got](const Message&) { ++(*ga)[0]; });

    // Deterministic LCG gap schedule, identical for both simulations.
    std::uint64_t lcg = 0x9E3779B97F4A7C15ull;
    Time t = 0;
    std::vector<Time> at;
    for (int k = 0; k < kSends; ++k) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      const auto r = static_cast<Time>((lcg >> 33) % 1000);
      if (k % 7 == 3) {
        t += (3600 + r * 9) * kSecond;  // 1h..3.5h: crosses wheel pages
      } else if (k % 3 == 0) {
        t += (r + 1) * 50 * kMillisecond;  // 50ms..50s: widen, then narrow
      } else {
        t += (r % 40 + 5) * kMillisecond;  // sub-lookahead burst
      }
      at.push_back(t);
    }
    for (const Time when : at) {
      sim.loop_for(a.id()).schedule_at(
          when,
          [ha = &a, to = b.id()] {
            ha->send(to, "ping", Value(std::int64_t{1}));
          },
          "kick.ping");
    }
    return at.back() + 1 * kSecond;  // horizon past the last reply
  };

  Simulation serial(11);
  std::vector<std::uint64_t> serial_got(2, 0);
  const Time end = build(serial, serial_got, /*partitioned=*/false);
  serial.run_until(end);
  EXPECT_EQ(serial_got[1], static_cast<std::uint64_t>(kSends));
  EXPECT_EQ(serial_got[0], static_cast<std::uint64_t>(kSends));
  EXPECT_GT(serial.loop().wheel_stats().overflow_migrated, 0u)
      << "the gap schedule must actually cross overflow pages";

  Simulation::ParallelStats t1_stats{};
  for (const int threads : {1, 2}) {
    Simulation part(11);
    std::vector<std::uint64_t> part_got(2, 0);
    const Time pend = build(part, part_got, /*partitioned=*/true);
    part.set_threads(threads);
    part.run_until(pend);
    EXPECT_EQ(part_got, serial_got) << "threads=" << threads;
    EXPECT_EQ(part.network().total_bytes(), serial.network().total_bytes());

    const auto& pstats = part.parallel_stats();
    EXPECT_GT(pstats.widened_windows, 0u) << "quiet stretches must widen";
    EXPECT_GT(pstats.idle_jumps, 0u) << "hour-scale gaps must jump";
    // ~9 virtual hours at 20 ms lookahead is ~1.6M naive windows; the
    // adaptive schedule must collapse that by orders of magnitude.
    EXPECT_LT(pstats.windows, 20000u);
    if (threads == 1) {
      t1_stats = pstats;
    } else {
      EXPECT_EQ(pstats.windows, t1_stats.windows);
      EXPECT_EQ(pstats.widened_windows, t1_stats.widened_windows);
      EXPECT_EQ(pstats.idle_jumps, t1_stats.idle_jumps);
      EXPECT_EQ(pstats.merged_deliveries, t1_stats.merged_deliveries);
      EXPECT_EQ(pstats.parallel_events, t1_stats.parallel_events);
      EXPECT_EQ(pstats.makespan_events, t1_stats.makespan_events);
    }
  }
}

TEST(ParallelSim, AutoPartitionRingTopologyGolden) {
  // The 4-group deployment's link table has a clean latency gap (1 ms intra,
  // 20 ms ring), so the partitioner must cut exactly along the groups and
  // assign them in ascending-gateway order — and the auto-assigned run must
  // replay a manually assigned one bit for bit.
  Deployment manual(4, 3, /*partitioned=*/true);
  manual.kick();
  manual.sim.run_until(2 * kSecond);

  Deployment autod(4, 3, /*partitioned=*/false);
  EXPECT_EQ(autod.sim.auto_partition(4), 4);
  EXPECT_EQ(autod.sim.partition_count(), 4);
  for (int g = 0; g < 4; ++g) {
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(autod.sim.partition_of(autod.host(g, i)), g)
          << "g=" << g << " i=" << i;
    }
  }
  autod.sim.set_threads(2);
  autod.kick();
  autod.sim.run_until(2 * kSecond);
  EXPECT_EQ(autod.delivered, manual.delivered);
  EXPECT_EQ(autod.sim.metrics().to_json_lines("sim"),
            manual.sim.metrics().to_json_lines("sim"));
}

TEST(ParallelSim, AutoPartitionStarTopologyGolden) {
  // Star: a hub with four fast satellites and one slow spoke. The largest
  // threshold with a real cut is the slow spoke's latency, leaving two
  // clusters; the bigger one (hub + satellites) takes partition 0.
  Simulation sim(9);
  Host& hub = sim.add_host("hub");
  std::vector<Host*> sats;
  for (int i = 0; i < 4; ++i) {
    sats.push_back(&sim.add_host(strf("sat", i)));
    sim.network().link(hub.id(), sats.back()->id()).latency = 1 * kMillisecond;
  }
  Host& repo = sim.add_host("repo");
  sim.network().link(hub.id(), repo.id()).latency = 40 * kMillisecond;

  EXPECT_EQ(sim.auto_partition(8), 2);
  EXPECT_EQ(sim.partition_of(hub.id()), 0);
  for (Host* s : sats) EXPECT_EQ(sim.partition_of(s->id()), 0);
  EXPECT_EQ(sim.partition_of(repo.id()), 1);

  // The cut guarantees positive lookahead: a partitioned window runs.
  int got = 0;
  repo.register_handler("x", [&](const Message&) { ++got; });
  sim.loop_for(hub.id()).schedule_at(
      0, [&] { hub.send(repo.id(), "x", Value(std::int64_t{1})); }, "kick");
  sim.run_until(1 * kSecond);
  EXPECT_EQ(got, 1);
}

TEST(ParallelSim, AutoPartitionUniformTopologyStaysSerial) {
  // No latency gap, no cut: every threshold yields either one cluster or
  // all-islands, so the simulation must stay serial.
  Simulation sim(9);
  std::vector<HostId> ids;
  for (int i = 0; i < 4; ++i) ids.push_back(sim.add_host(strf("h", i)).id());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      sim.network().link(ids[i], ids[j]).latency = 1 * kMillisecond;
    }
  }
  EXPECT_EQ(sim.auto_partition(4), 1);
  EXPECT_EQ(sim.partition_count(), 1);
}

TEST(ParallelSim, AutoPartitionIsDeterministicAndSingleShot) {
  const auto assignments = [](int max_partitions) {
    Simulation sim(9);
    Host& hub = sim.add_host("hub");
    std::vector<int> got;
    std::vector<HostId> ids{hub.id()};
    for (int i = 0; i < 5; ++i) {
      Host& h = sim.add_host(strf("n", i));
      ids.push_back(h.id());
      sim.network().link(hub.id(), h.id()).latency =
          (i < 3 ? 2 : 30) * kMillisecond;
    }
    sim.auto_partition(max_partitions);
    got.reserve(ids.size());
    for (const HostId id : ids) got.push_back(sim.partition_of(id));
    return got;
  };
  EXPECT_EQ(assignments(4), assignments(4));
  EXPECT_EQ(assignments(2), assignments(2));

  Simulation sim(9);
  Host& a = sim.add_host("a");
  Host& b = sim.add_host("b");
  sim.add_host("c");
  sim.set_partition(a.id(), 0);
  sim.set_partition(b.id(), 1);
  EXPECT_THROW(sim.auto_partition(2), Error)
      << "repartitioning an already-partitioned simulation must refuse";
}

TEST(ParallelSim, IdlePartitionedRunAdvancesAllClocks) {
  Simulation sim(5);
  Host& a = sim.add_host("a");
  Host& b = sim.add_host("b");
  sim.set_partition(a.id(), 0);
  sim.set_partition(b.id(), 1);
  sim.network().link(a.id(), b.id());  // default latency: finite lookahead
  EXPECT_EQ(sim.run_until(5 * kSecond), 0u);
  EXPECT_EQ(sim.loop_of(0).now(), 5 * kSecond);
  EXPECT_EQ(sim.loop_of(1).now(), 5 * kSecond);
  // The idle fast-path must not need one barrier per lookahead window.
  EXPECT_LT(sim.parallel_stats().windows, 16u);
}

}  // namespace
}  // namespace rcs::sim
