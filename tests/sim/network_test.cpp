#include "rcs/sim/network.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "rcs/sim/simulation.hpp"

namespace rcs::sim {
namespace {

struct NetFixture : ::testing::Test {
  Simulation sim{42};
  Host& a = sim.add_host("a");
  Host& b = sim.add_host("b");

  std::vector<Message> received;

  void SetUp() override {
    b.register_handler("msg", [this](const Message& m) { received.push_back(m); });
    // Make timing assertions exact.
    sim.network().default_link().jitter = 0.0;
  }

  void send(Value payload = Value("ping")) {
    sim.network().send({a.id(), b.id(), "msg", Payload{std::move(payload)}});
  }
};

TEST_F(NetFixture, DeliversToRegisteredHandler) {
  send();
  sim.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].payload->as_string(), "ping");
  EXPECT_EQ(received[0].from, a.id());
}

TEST_F(NetFixture, DeliveryDelayIsLatencyPlusTransfer) {
  auto& link = sim.network().link(a.id(), b.id());
  link.latency = 5 * kMillisecond;
  link.bandwidth_bps = 1'000'000.0;  // 1 MB/s
  link.jitter = 0.0;

  Time delivered_at = -1;
  b.register_handler("msg", [&](const Message&) { delivered_at = sim.now(); });
  const Value payload(Bytes(10'000, 0xAA));  // ~10 KB
  send(payload);
  sim.run();

  const auto size = payload.encoded_size() + Network::kHeaderBytes;
  const auto expected =
      5 * kMillisecond +
      static_cast<Duration>(static_cast<double>(size) / 1'000'000.0 * kSecond);
  EXPECT_EQ(delivered_at, expected);
}

TEST_F(NetFixture, PartitionDropsTraffic) {
  sim.network().set_partitioned(a.id(), b.id(), true);
  send();
  sim.run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(sim.network().link_stats(a.id(), b.id()).dropped, 1u);
}

TEST_F(NetFixture, HealedPartitionDeliversAgain) {
  sim.network().set_partitioned(a.id(), b.id(), true);
  send();
  sim.run();
  sim.network().set_partitioned(a.id(), b.id(), false);
  send();
  sim.run();
  EXPECT_EQ(received.size(), 1u);
}

TEST_F(NetFixture, CrashedSenderIsSilent) {
  a.crash();
  send();
  sim.run();
  EXPECT_TRUE(received.empty());
  EXPECT_EQ(sim.network().traffic(a.id()).messages_sent, 0u);
}

TEST_F(NetFixture, CrashedReceiverDropsInFlight) {
  send();
  b.crash();
  sim.run();
  EXPECT_TRUE(received.empty());
  // Sender-side bytes were still put on the wire.
  EXPECT_EQ(sim.network().traffic(a.id()).messages_sent, 1u);
  EXPECT_EQ(sim.network().traffic(b.id()).messages_received, 0u);
}

TEST_F(NetFixture, TrafficAccountingIsSymmetric) {
  send();
  send();
  sim.run();
  const auto& ta = sim.network().traffic(a.id());
  const auto& tb = sim.network().traffic(b.id());
  EXPECT_EQ(ta.messages_sent, 2u);
  EXPECT_EQ(tb.messages_received, 2u);
  EXPECT_EQ(ta.bytes_sent, tb.bytes_received);
  EXPECT_GT(ta.bytes_sent, 2 * Network::kHeaderBytes);
  EXPECT_EQ(sim.network().total_bytes(), ta.bytes_sent);
}

TEST_F(NetFixture, MeterChargesBothEnds) {
  send();
  sim.run();
  EXPECT_GT(a.meter().bytes_sent(), 0u);
  EXPECT_GT(b.meter().bytes_received(), 0u);
  EXPECT_EQ(a.meter().bytes_sent(), b.meter().bytes_received());
}

TEST_F(NetFixture, DropRateLosesApproximatelyThatFraction) {
  sim.network().link(a.id(), b.id()).drop_rate = 0.5;
  for (int i = 0; i < 400; ++i) send();
  sim.run();
  EXPECT_GT(received.size(), 120u);
  EXPECT_LT(received.size(), 280u);
}

TEST_F(NetFixture, UnknownTypeIsIgnored) {
  sim.network().send({a.id(), b.id(), "unknown.type", Payload{Value(1)}});
  EXPECT_NO_THROW(sim.run());
}

TEST_F(NetFixture, LoopbackIsImmediate) {
  Value got;
  a.register_handler("self", [&](const Message& m) { got = m.payload; });
  sim.network().send({a.id(), a.id(), "self", Payload{Value(7)}});
  sim.run();
  EXPECT_EQ(got.as_int(), 7);
  EXPECT_EQ(sim.now(), 0);
}

TEST_F(NetFixture, TransmissionQueuesBehindEarlierFrames) {
  // Two back-to-back large frames on the same directed link: the second
  // waits for the first transmission to finish (serialization), while
  // propagation latency overlaps.
  auto& link = sim.network().link(a.id(), b.id());
  link.latency = 10 * kMillisecond;
  link.bandwidth_bps = 1'000'000.0;  // 1 MB/s
  link.jitter = 0.0;

  std::vector<Time> arrivals;
  b.register_handler("msg", [&](const Message&) { arrivals.push_back(sim.now()); });
  const Value payload(Bytes(100'000, 0xAA));  // ~100 ms of transmission
  send(payload);
  send(payload);
  sim.run();

  ASSERT_EQ(arrivals.size(), 2u);
  const auto size = payload.encoded_size() + Network::kHeaderBytes;
  const auto transfer =
      static_cast<Duration>(static_cast<double>(size) / 1'000'000.0 * kSecond);
  EXPECT_EQ(arrivals[0], transfer + 10 * kMillisecond);
  EXPECT_EQ(arrivals[1], 2 * transfer + 10 * kMillisecond)
      << "second frame must queue behind the first";
  EXPECT_EQ(sim.network().link_stats(a.id(), b.id()).queueing, transfer);
}

TEST_F(NetFixture, OppositeDirectionsDoNotQueueOnEachOther) {
  auto& link = sim.network().link(a.id(), b.id());
  link.latency = 0;
  link.bandwidth_bps = 1'000'000.0;
  link.jitter = 0.0;
  Time a_to_b = -1, b_to_a = -1;
  b.register_handler("msg", [&](const Message&) { a_to_b = sim.now(); });
  a.register_handler("back", [&](const Message&) { b_to_a = sim.now(); });
  const Value payload(Bytes(100'000, 1));
  sim.network().send({a.id(), b.id(), "msg", Payload{payload}});
  sim.network().send({b.id(), a.id(), "back", Payload{payload}});
  sim.run();
  // Full duplex: both directions transmit simultaneously.
  EXPECT_EQ(a_to_b, b_to_a);
}

TEST_F(NetFixture, LinkParamsAreSymmetric) {
  sim.network().link(a.id(), b.id()).latency = 9 * kMillisecond;
  EXPECT_EQ(sim.network().link(b.id(), a.id()).latency, 9 * kMillisecond);
}

TEST_F(NetFixture, JitterVariesDelayWithinBounds) {
  auto& link = sim.network().link(a.id(), b.id());
  link.latency = 0;
  link.bandwidth_bps = 1'000'000.0;
  link.jitter = 0.1;

  std::vector<Time> arrivals;
  b.register_handler("msg", [&](const Message&) { arrivals.push_back(sim.now()); });
  Time last = 0;
  std::vector<Duration> deltas;
  for (int i = 0; i < 50; ++i) {
    send(Value(Bytes(100'000, 1)));
    sim.run();
    deltas.push_back(arrivals.back() - last);
    last = arrivals.back();
  }
  // All transfers are the same size; jitter must produce differing delays.
  bool any_diff = false;
  for (std::size_t i = 1; i < deltas.size(); ++i) {
    if (deltas[i] != deltas[0]) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(NetFixture, LargeJitterNeverTurnsTimeBackwards) {
  // Regression: jitter > 1.0 could draw an effective factor below zero,
  // scheduling a delivery before its own send time (the timer wheel then
  // throws on the past-deadline insert — or worse, silently reorders).
  // The factor is now clamped at zero: a wild draw can null the transfer
  // delay but never produce a negative one.
  auto& link = sim.network().link(a.id(), b.id());
  link.latency = 2 * kMillisecond;
  link.bandwidth_bps = 1'000'000.0;
  link.jitter = 1.5;  // legal: factor drawn from [1 - 1.5, 1 + 1.5]

  std::vector<Time> sent_at;
  std::vector<Time> arrived_at;
  b.register_handler("msg",
                     [&](const Message&) { arrived_at.push_back(sim.now()); });
  for (int i = 0; i < 200; ++i) {
    sim.schedule_at(i * kMillisecond, [&] {
      sent_at.push_back(sim.now());
      send(Value(Bytes(50'000, 2)));
    });
  }
  ASSERT_NO_THROW(sim.run());
  ASSERT_EQ(arrived_at.size(), 200u);
  std::sort(sent_at.begin(), sent_at.end());
  std::sort(arrived_at.begin(), arrived_at.end());
  for (std::size_t i = 0; i < arrived_at.size(); ++i) {
    // Every arrival is at or after the corresponding send plus latency
    // (jitter scales only the transfer component, and never below zero).
    EXPECT_GE(arrived_at[i], sent_at[i] + link.latency);
  }
}

TEST_F(NetFixture, DuplicateRateDeliversSomeMessagesTwice) {
  auto& link = sim.network().link(a.id(), b.id());
  link.duplicate_rate = 0.5;
  for (int i = 0; i < 200; ++i) send(Value(i));
  sim.run();
  const auto& stats = sim.network().link_stats(a.id(), b.id());
  EXPECT_GT(stats.duplicated, 60u);
  EXPECT_LT(stats.duplicated, 140u);
  EXPECT_EQ(received.size(), 200u + stats.duplicated);
  // Duplicates are byte-identical copies, not re-sends: sender-side message
  // accounting counts the original only.
  EXPECT_EQ(stats.messages, 200u);
}

TEST_F(NetFixture, ReorderRateLetsLaterSendsOvertake) {
  auto& link = sim.network().link(a.id(), b.id());
  link.latency = 1 * kMillisecond;
  link.reorder_rate = 0.3;
  link.reorder_window = 20 * kMillisecond;
  for (int i = 0; i < 100; ++i) {
    sim.schedule_at(i * 2 * kMillisecond,
                    [this, i] { send(Value(i)); });
  }
  sim.run();
  ASSERT_EQ(received.size(), 100u);
  bool out_of_order = false;
  for (std::size_t i = 1; i < received.size(); ++i) {
    if (received[i].payload->as_int() < received[i - 1].payload->as_int()) {
      out_of_order = true;
    }
  }
  EXPECT_TRUE(out_of_order) << "reordering must let later sends overtake";
  EXPECT_GT(sim.network().link_stats(a.id(), b.id()).reordered, 10u);
}

TEST_F(NetFixture, DuplicationAndReorderingAreOffByDefault) {
  for (int i = 0; i < 50; ++i) send(Value(i));
  sim.run();
  ASSERT_EQ(received.size(), 50u);
  for (std::size_t i = 0; i < received.size(); ++i) {
    EXPECT_EQ(received[i].payload->as_int(), static_cast<std::int64_t>(i));
  }
  const auto& stats = sim.network().link_stats(a.id(), b.id());
  EXPECT_EQ(stats.duplicated, 0u);
  EXPECT_EQ(stats.reordered, 0u);
}

}  // namespace
}  // namespace rcs::sim
