// Tracer semantics (ring bounds, interning, zero-cost-when-disabled) and
// end-to-end trace export determinism over a full chaos campaign.
#include <gtest/gtest.h>

#include "rcs/core/chaos_campaign.hpp"
#include "rcs/obs/trace.hpp"

namespace rcs::obs {
namespace {

TEST(SpanRing, OverwritesOldestAndCountsDrops) {
  SpanRing ring(4);
  for (std::int64_t i = 1; i <= 6; ++i) {
    ring.push(SpanRecord{.start = i});
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.dropped(), 2u);
  std::vector<std::int64_t> starts;
  ring.for_each([&](const SpanRecord& r) { starts.push_back(r.start); });
  EXPECT_EQ(starts, (std::vector<std::int64_t>{3, 4, 5, 6}))
      << "survivors are the newest, visited oldest-to-newest";
}

TEST(Tracer, InternIsStablePerName) {
  Tracer tracer;
  const NameId a = tracer.intern("ftm.before");
  const NameId b = tracer.intern("ftm.proceed");
  EXPECT_NE(a, b);
  EXPECT_EQ(tracer.intern("ftm.before"), a);
  EXPECT_EQ(tracer.name_of(a), "ftm.before");
}

TEST(Tracer, DisabledTracerRecordsNothing) {
  Tracer tracer;
  const NameId name = tracer.intern("x");
  tracer.span(1, name, 0, 10, 20);
  tracer.instant(1, name, 0, 15);
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.stored(), 0u);
}

TEST(Tracer, RingCapacityBoundsStorage) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_ring_capacity(8);
  const NameId name = tracer.intern("x");
  for (int i = 0; i < 100; ++i) tracer.span(1, name, 0, i, i + 1);
  EXPECT_EQ(tracer.recorded(), 100u);
  EXPECT_EQ(tracer.stored(), 8u);
  EXPECT_EQ(tracer.dropped(), 92u);
}

TEST(Tracer, ExportEmitsChromeEvents) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.set_host_name(7, "replica0");
  const NameId name = tracer.intern("ftm.before");
  tracer.span(7, name, 42, 100, 250, 9);
  tracer.instant(7, tracer.intern("ckpt.apply"), 0, 300);
  const std::string json = tracer.export_chrome_json();
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u) << json;
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"replica0\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"ftm.before\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":150"), std::string::npos);
}

core::ChaosCampaignOptions traced_options() {
  core::ChaosCampaignOptions options;
  options.seed = 3;
  options.ftm = "PBR";
  options.transition_to = "LFR";
  options.record_trace = true;
  return options;
}

TEST(TraceExport, CampaignTraceIsByteIdenticalAcrossRuns) {
  const auto first = core::run_campaign(traced_options());
  const auto second = core::run_campaign(traced_options());
  ASSERT_FALSE(first.trace_json.empty());
  EXPECT_EQ(first.trace_json, second.trace_json);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST(TraceExport, CampaignTraceCoversTheWholeStack) {
  const auto result = core::run_campaign(traced_options());
  const std::string& json = result.trace_json;
  // Kernel phases, client requests, checkpointing, and the mid-campaign
  // differential transition all leave spans.
  for (const char* name :
       {"ftm.before", "ftm.proceed", "ftm.after", "client.request",
        "ckpt.send", "adapt.transition", "adapt.script"}) {
    EXPECT_NE(json.find(name), std::string::npos) << "missing span: " << name;
  }
  // Metrics lines cover kernel counters and the scheduler.
  EXPECT_NE(result.metrics_json.find("ftm.requests@"), std::string::npos);
  EXPECT_NE(result.metrics_json.find("sim.events"), std::string::npos);
  EXPECT_NE(result.metrics_json.find("client.latency_us@"), std::string::npos);
}

TEST(TraceExport, UntracedCampaignStaysEmpty) {
  auto options = traced_options();
  options.record_trace = false;
  const auto result = core::run_campaign(options);
  EXPECT_TRUE(result.trace_json.empty());
  EXPECT_TRUE(result.metrics_json.empty());
}

}  // namespace
}  // namespace rcs::obs
