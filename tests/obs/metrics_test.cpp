// MetricsRegistry semantics: handle/cell binding, log-scale histogram
// bucketing, and deterministic export.
#include <gtest/gtest.h>

#include "rcs/obs/metrics.hpp"

namespace rcs::obs {
namespace {

TEST(Counter, DefaultHandleCountsLocally) {
  Counter c;
  ++c;
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(static_cast<std::uint64_t>(c), 5u);
}

TEST(Counter, BindCarriesLocalCountIntoTheCell) {
  Counter c;
  c.add(3);
  std::uint64_t cell = 99;  // stale content from a previous instance
  c.bind(&cell);
  EXPECT_EQ(cell, 3u) << "bind seeds the cell with the handle's count";
  ++c;
  EXPECT_EQ(cell, 4u);
  EXPECT_EQ(c.value(), 4u);
}

TEST(Counter, RebindToSameCellIsIdempotent) {
  std::uint64_t cell = 0;
  Counter c;
  c.bind(&cell);
  c.add(7);
  c.bind(&cell);  // e.g. on_start running twice
  EXPECT_EQ(cell, 7u);
}

TEST(MetricsRegistry, SameNameSharesOneCell) {
  MetricsRegistry registry;
  Counter a = registry.counter("requests");
  Counter b = registry.counter("requests");
  ++a;
  b.add(2);
  EXPECT_EQ(a.value(), 3u);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_EQ(registry.instrument_count(), 1u);
}

// Regression: registry lookups must be pure views. An early implementation
// routed counter() through bind(), whose seeding semantics zeroed the cell on
// every lookup — so `metrics.counter("x").add(1)` never got past 1.
TEST(MetricsRegistry, RepeatedLookupDoesNotResetTheCell) {
  MetricsRegistry registry;
  for (int i = 0; i < 5; ++i) registry.counter("fired").add(1);
  EXPECT_EQ(registry.counter("fired").value(), 5u);
}

TEST(MetricsRegistry, ComponentRebindRestartsItsSeries) {
  // A redeployed component binds a FRESH handle block onto the same named
  // cells: the series restarts from zero (fresh-instance semantics) instead
  // of double-counting the previous deployment.
  MetricsRegistry registry;
  Counter first;
  first.bind(registry.counter_cell("ftm.requests@replica0"));
  first.add(10);
  Counter second;  // new instance after redeploy
  second.bind(registry.counter_cell("ftm.requests@replica0"));
  EXPECT_EQ(registry.counter("ftm.requests@replica0").value(), 0u);
  second.add(2);
  EXPECT_EQ(registry.counter("ftm.requests@replica0").value(), 2u);
}

TEST(Gauge, LastWriteWins) {
  MetricsRegistry registry;
  Gauge g = registry.gauge("cpu");
  g.set(0.5);
  g.set(0.25);
  EXPECT_DOUBLE_EQ(registry.gauge("cpu").value(), 0.25);
}

TEST(Histogram, BucketOfIsLogScale) {
  EXPECT_EQ(HistogramCells::bucket_of(-5), 0u);
  EXPECT_EQ(HistogramCells::bucket_of(0), 0u);
  EXPECT_EQ(HistogramCells::bucket_of(1), 1u);
  EXPECT_EQ(HistogramCells::bucket_of(2), 2u);
  EXPECT_EQ(HistogramCells::bucket_of(3), 2u);
  EXPECT_EQ(HistogramCells::bucket_of(4), 3u);
  EXPECT_EQ(HistogramCells::bucket_of(1023), 10u);
  EXPECT_EQ(HistogramCells::bucket_of(1024), 11u);
  EXPECT_EQ(HistogramCells::bucket_of(std::int64_t{1} << 62), 63u);
}

TEST(Histogram, BucketBoundIsInclusiveUpperEdge) {
  EXPECT_EQ(HistogramCells::bucket_bound(0), 0);
  EXPECT_EQ(HistogramCells::bucket_bound(1), 1);
  EXPECT_EQ(HistogramCells::bucket_bound(2), 3);
  EXPECT_EQ(HistogramCells::bucket_bound(3), 7);
  EXPECT_EQ(HistogramCells::bucket_bound(10), 1023);
  // Every value must fall inside its bucket's bound.
  for (std::int64_t v : {0, 1, 2, 7, 8, 100, 4095, 4096}) {
    const auto bucket = HistogramCells::bucket_of(v);
    EXPECT_LE(v, HistogramCells::bucket_bound(bucket)) << v;
    if (bucket > 0) {
      EXPECT_GT(v, HistogramCells::bucket_bound(bucket - 1)) << v;
    }
  }
}

TEST(Histogram, RecordTracksCountSumMinMax) {
  MetricsRegistry registry;
  Histogram h = registry.histogram("latency");
  h.record(100);
  h.record(1);
  h.record(5);
  ASSERT_NE(h.cells(), nullptr);
  EXPECT_EQ(h.cells()->count, 3u);
  EXPECT_EQ(h.cells()->sum, 106);
  EXPECT_EQ(h.cells()->min, 1);
  EXPECT_EQ(h.cells()->max, 100);
  EXPECT_EQ(h.cells()->buckets[HistogramCells::bucket_of(100)], 1u);
}

TEST(MetricsRegistry, ExportIsDeterministicAndNameSorted) {
  const auto build = [] {
    MetricsRegistry registry;
    registry.counter("zeta").add(3);
    registry.counter("alpha").add(1);
    registry.gauge("cpu").set(0.75);
    registry.histogram("lat").record(42);
    return registry.to_json_lines("PBR/delta");
  };
  const std::string a = build();
  const std::string b = build();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"scope\":\"PBR/delta\""), std::string::npos) << a;
  EXPECT_NE(a.find("\"name\":\"alpha\""), std::string::npos);
  EXPECT_LT(a.find("\"name\":\"alpha\""), a.find("\"name\":\"zeta\""))
      << "counters must export name-sorted";
}

}  // namespace
}  // namespace rcs::obs
