// MonitoringEngine unit tests: hysteresis latches, fault-latch re-arm across
// separated episodes, byte-counter reset robustness, sliding-window bounds.
//
// These drive the engine directly over a bare simulation (no FTM deployed):
// fault events arrive as "monitor.event" messages exactly as the node agents
// send them, and the resource probes read the simulated network/hosts.
#include <gtest/gtest.h>

#include "rcs/core/monitoring.hpp"
#include "rcs/sim/simulation.hpp"

namespace rcs::core {
namespace {

struct MonitoringFixture : ::testing::Test {
  MonitoringFixture()
      : manager(sim.add_host("manager")),
        r0(sim.add_host("replica0")),
        r1(sim.add_host("replica1")),
        engine(manager, {r0.id(), r1.id()}, thresholds()) {}

  static MonitoringThresholds thresholds() {
    MonitoringThresholds t;
    t.event_window = 20 * sim::kSecond;
    t.transient_events = 2;
    t.divergence_events = 2;
    return t;
  }

  /// Inject one kernel fault event, as a node agent would report it.
  void report(const std::string& kind) {
    r0.send(manager.id(), "monitor.event", Value::map().set("kind", kind));
    sim.run_for(10 * sim::kMillisecond);
  }

  [[nodiscard]] std::size_t fired(TriggerKind kind) const {
    std::size_t n = 0;
    for (const auto& trigger : engine.trigger_log()) {
      if (trigger.kind == kind) ++n;
    }
    return n;
  }

  sim::Simulation sim;
  sim::Host& manager;
  sim::Host& r0;
  sim::Host& r1;
  MonitoringEngine engine;
};

// Regression for the latched-forever bug: the transient latch never re-armed,
// so only the FIRST fault episode of a campaign ever produced a trigger. Two
// bursts separated by more than the event window are two distinct episodes
// and must fire two kTransientFaults triggers.
TEST_F(MonitoringFixture, SeparatedTransientEpisodesFireSeparateTriggers) {
  report("tr_mismatch");
  report("tr_mismatch");
  EXPECT_EQ(fired(TriggerKind::kTransientFaults), 1u) << "first episode";

  // Quiet period long enough for the first episode's evidence to expire.
  sim.run_for(30 * sim::kSecond);

  report("tr_mismatch");
  EXPECT_EQ(fired(TriggerKind::kTransientFaults), 1u)
      << "one fresh event is below threshold - must not fire";
  report("tr_mismatch");
  EXPECT_EQ(fired(TriggerKind::kTransientFaults), 2u)
      << "second episode reached threshold but the latch never re-armed";
}

TEST_F(MonitoringFixture, ContinuousEvidenceFiresOnlyOnce) {
  // A latch exists for a reason: evidence trickling in while the window is
  // already over threshold is the same episode, not news.
  for (int i = 0; i < 6; ++i) {
    report("tr_mismatch");
    sim.run_for(1 * sim::kSecond);
  }
  EXPECT_EQ(fired(TriggerKind::kTransientFaults), 1u);
}

TEST_F(MonitoringFixture, DivergenceLatchRearmsToo) {
  report("divergence");
  report("divergence");
  sim.run_for(30 * sim::kSecond);
  report("divergence");
  report("divergence");
  EXPECT_EQ(fired(TriggerKind::kDivergence), 2u);
}

TEST_F(MonitoringFixture, PeriodicSamplingRearmsWithoutNewEvents) {
  // The latch must drain via sample() as well, not only lazily on the next
  // event: with probing running, a quiet window alone re-arms the latch.
  engine.start(500 * sim::kMillisecond);
  report("tr_mismatch");
  report("tr_mismatch");
  ASSERT_EQ(fired(TriggerKind::kTransientFaults), 1u);
  sim.run_for(30 * sim::kSecond);
  report("tr_mismatch");
  report("tr_mismatch");
  EXPECT_EQ(fired(TriggerKind::kTransientFaults), 2u);
  engine.stop();
}

TEST_F(MonitoringFixture, BandwidthHysteresisFiresOncePerCrossing) {
  engine.start(500 * sim::kMillisecond);
  auto& link = sim.network().link(r0.id(), r1.id());
  sim.run_for(2 * sim::kSecond);
  EXPECT_EQ(fired(TriggerKind::kBandwidthDrop), 0u);

  link.bandwidth_bps = 1e6;  // below low watermark (3e6)
  sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(fired(TriggerKind::kBandwidthDrop), 1u)
      << "stays latched while low - no trigger flood";

  link.bandwidth_bps = 5e6;  // inside the hysteresis band: no change
  sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(fired(TriggerKind::kBandwidthRestored), 0u);

  link.bandwidth_bps = 12.5e6;  // above high watermark (8e6)
  sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(fired(TriggerKind::kBandwidthRestored), 1u);
  engine.stop();
}

// Regression for the byte-counter underflow: Network::reset_stats() (or any
// LinkStats regression, e.g. around a host restart) made
// `link_bytes - last_link_bytes_` wrap to a huge unsigned value, which read
// as an astronomic byte rate and fired a spurious kLinkSaturated trigger.
TEST_F(MonitoringFixture, LinkStatsResetDoesNotFireSpuriousSaturation) {
  engine.start(500 * sim::kMillisecond);
  // Light replica chatter: enough to establish a nonzero byte baseline,
  // far below the 35% saturation threshold on a 12.5 MB/s link.
  for (int i = 0; i < 20; ++i) {
    sim.schedule_at(i * 100 * sim::kMillisecond, [this] {
      r0.send(r1.id(), "peer.noop", Value::map().set("pad", 64));
    });
  }
  sim.run_for(3 * sim::kSecond);
  ASSERT_GT(sim.network().link_stats(r0.id(), r1.id()).bytes, 0u);
  EXPECT_EQ(fired(TriggerKind::kLinkSaturated), 0u);

  sim.network().reset_stats();
  sim.run_for(3 * sim::kSecond);
  EXPECT_EQ(fired(TriggerKind::kLinkSaturated), 0u)
      << "counter regression must read as an empty window, not saturation";
  engine.stop();
}

TEST_F(MonitoringFixture, EventTotalsSurviveWindowExpiry) {
  report("tr_mismatch");
  report("tr_mismatch");
  report("assertion_failed");
  sim.run_for(60 * sim::kSecond);
  EXPECT_EQ(engine.events_observed("tr_mismatch"), 2u);
  EXPECT_EQ(engine.events_observed("assertion_failed"), 1u);
  EXPECT_EQ(engine.events_observed("divergence"), 0u);
}

// Regression for the unbounded-window bug: window_count() pruned only the
// queried kind, so a kind the trigger logic never asks about ("noise" here)
// accumulated timestamps for the whole campaign.
TEST_F(MonitoringFixture, UnqueriedKindWindowIsPrunedBySampling) {
  engine.start(500 * sim::kMillisecond);
  report("noise");
  report("noise");
  report("noise");
  EXPECT_EQ(engine.window_backlog("noise"), 3u);
  sim.run_for(30 * sim::kSecond);  // well past the 20 s event window
  EXPECT_EQ(engine.window_backlog("noise"), 0u)
      << "stale timestamps of never-queried kinds must be dropped";
  EXPECT_EQ(engine.events_observed("noise"), 3u) << "totals keep counting";
  engine.stop();
}

TEST_F(MonitoringFixture, EventBurstIsCappedPerKind) {
  // No sampling running at all: the hard per-kind cap alone must bound a
  // burst arriving between samples.
  for (int i = 0; i < 5000; ++i) {
    r0.send(manager.id(), "monitor.event",
            Value::map().set("kind", "noise"));
  }
  sim.run_for(1 * sim::kSecond);
  EXPECT_EQ(engine.events_observed("noise"), 5000u);
  EXPECT_LE(engine.window_backlog("noise"), 4096u);
}

}  // namespace
}  // namespace rcs::core
