#include "rcs/core/transition_graph.hpp"

#include <gtest/gtest.h>

#include "rcs/app/apps.hpp"
#include "rcs/common/error.hpp"
#include "rcs/ftm/registration.hpp"

namespace rcs::core {
namespace {

struct GraphFixture : ::testing::Test {
  GraphFixture() {
    ftm::register_components();
    app::register_components();
  }
};

TEST_F(GraphFixture, Figure2HasFiveFtmsAndBidirectionalEdges) {
  const auto graph = TransitionGraph::figure2();
  EXPECT_EQ(graph.nodes().size(), 5u);
  // Each FTM-pair edge of Fig. 2 has labels among FT / A / R classes.
  for (const auto& edge : graph.edges()) {
    EXPECT_TRUE(edge.label.find('A') != std::string::npos ||
                edge.label.find("FT") != std::string::npos ||
                edge.label.find('R') != std::string::npos)
        << edge.label;
  }
  // PBR <-> LFR both directions exist.
  int pbr_lfr = 0;
  for (const auto& edge : graph.edges()) {
    if ((edge.from == "PBR" && edge.to == "LFR") ||
        (edge.from == "LFR" && edge.to == "PBR")) {
      ++pbr_lfr;
    }
  }
  EXPECT_EQ(pbr_lfr, 2);
}

TEST_F(GraphFixture, Figure2IsConsistentWithCapabilityModel) {
  EXPECT_EQ(TransitionGraph::figure2().validate_against_model(),
            std::vector<std::string>{});
}

TEST_F(GraphFixture, Figure8HasSevenStates) {
  const auto graph = TransitionGraph::figure8();
  EXPECT_EQ(graph.nodes().size(), 7u);
  EXPECT_NO_THROW((void)graph.node("No generic solution"));
  EXPECT_THROW((void)graph.node("ghost state"), LogicError);
}

TEST_F(GraphFixture, Figure8IsConsistentWithCapabilityModel) {
  // Every mandatory/possible/intra tag from the paper's figure must agree
  // with what the capability + viability model derives mechanically.
  EXPECT_EQ(TransitionGraph::figure8().validate_against_model(),
            std::vector<std::string>{});
}

TEST_F(GraphFixture, MandatoryEdgesHavePossibleReverses) {
  // §5.4: "the reverse of a mandatory transition is always a possible one" —
  // this is the oscillation-avoidance argument.
  const auto graph = TransitionGraph::figure8();
  for (const auto& edge : graph.edges()) {
    if (edge.kind != EdgeKind::kMandatory || edge.to == "No generic solution") {
      continue;
    }
    bool reverse_found = false;
    bool reverse_is_mandatory = false;
    for (const auto& other : graph.edges()) {
      if (other.from == edge.to && other.to == edge.from) {
        reverse_found = true;
        if (other.kind == EdgeKind::kMandatory) reverse_is_mandatory = true;
      }
    }
    if (reverse_found) {
      EXPECT_FALSE(reverse_is_mandatory)
          << edge.from << " <-> " << edge.to
          << ": both directions mandatory would oscillate";
    }
  }
}

TEST_F(GraphFixture, ProactiveEdgesAreExactlyTheFaultModelOnes) {
  // §5.4: FT-driven transitions are proactive; A/R-driven ones reactive.
  const auto graph = TransitionGraph::figure8();
  for (const auto& edge : graph.edges()) {
    const bool ft_edge = edge.label.find("critical phase") != std::string::npos ||
                         edge.label.find("Hardware") != std::string::npos;
    EXPECT_EQ(edge.nature == EdgeNature::kProactive, ft_edge) << edge.label;
  }
}

TEST_F(GraphFixture, ProbeEdgesAreTheResourceOnes) {
  const auto graph = TransitionGraph::figure8();
  for (const auto& edge : graph.edges()) {
    const bool resource_edge = edge.label.find("Bandwidth") != std::string::npos ||
                               edge.label.find("CPU") != std::string::npos;
    EXPECT_EQ(edge.detection == EdgeDetection::kProbe, resource_edge)
        << edge.label;
  }
}

TEST_F(GraphFixture, IntraEdgesKeepTheSameFtm) {
  const auto graph = TransitionGraph::figure8();
  int intra = 0;
  for (const auto& edge : graph.edges()) {
    if (edge.kind != EdgeKind::kIntra) continue;
    ++intra;
    EXPECT_EQ(graph.node(edge.from).ftm_name, graph.node(edge.to).ftm_name)
        << edge.label;
  }
  EXPECT_GE(intra, 3);
}

TEST_F(GraphFixture, RenderListsEveryEdge) {
  const auto graph = TransitionGraph::figure8();
  const std::string rendered = graph.render();
  for (const auto& edge : graph.edges()) {
    EXPECT_NE(rendered.find(edge.label), std::string::npos) << edge.label;
  }
  EXPECT_NE(rendered.find("mandatory"), std::string::npos);
  EXPECT_NE(rendered.find("proactive"), std::string::npos);
}

TEST_F(GraphFixture, ClassifyMatchesHandPickedCases) {
  const auto graph = TransitionGraph::figure8();
  const auto& pbr_det = graph.node("PBR (determinism)");
  const auto& lfr_state = graph.node("LFR (state access)");

  // Bandwidth collapse: staying on PBR is not an option.
  FtarState after = pbr_det.context;
  after.resources.bandwidth_bps = 400'000.0;
  EXPECT_EQ(graph.classify(pbr_det, lfr_state, after), EdgeKind::kMandatory);

  // Plenty of everything: moving to LFR is merely possible.
  after = pbr_det.context;
  after.resources.cpu_speed = 1.6;
  EXPECT_EQ(graph.classify(pbr_det, lfr_state, after), EdgeKind::kPossible);

  // Same FTM, changed context: intra.
  const auto& pbr_nondet = graph.node("PBR (non-determinism)");
  EXPECT_EQ(graph.classify(pbr_det, pbr_nondet, pbr_nondet.context),
            EdgeKind::kIntra);
}

}  // namespace
}  // namespace rcs::core
