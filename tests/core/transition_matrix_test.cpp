// Parameterized sweeps over the full experiment space:
//   - every ordered pair of Table 3 FTMs: differential transition under a
//     live workload with state continuity and exactly-once checks;
//   - every FTM x fault-class cell of Table 1: the injected fault is
//     tolerated if and only if the capability model says so.
#include <gtest/gtest.h>

#include "rcs/app/app_base.hpp"
#include "rcs/core/capability.hpp"
#include "rcs/core/system.hpp"

namespace rcs::core {
namespace {

using ftm::FtmConfig;

Value kv_incr() {
  return Value::map().set("op", "incr").set("key", "k").set("by", 1);
}

// ---------------------------------------------------------------------------
// All ordered Table 3 pairs
// ---------------------------------------------------------------------------

using Pair = std::tuple<std::string, std::string>;

std::vector<Pair> all_pairs() {
  std::vector<Pair> pairs;
  for (const auto& from : FtmConfig::table3_set()) {
    for (const auto& to : FtmConfig::table3_set()) {
      if (from == to) continue;
      pairs.emplace_back(from.name, to.name);
    }
  }
  return pairs;
}

class TransitionMatrix : public ::testing::TestWithParam<Pair> {};

TEST_P(TransitionMatrix, DifferentialTransitionPreservesService) {
  const auto& [from_name, to_name] = GetParam();
  const FtmConfig& from = FtmConfig::by_name(from_name);
  const FtmConfig& to = FtmConfig::by_name(to_name);

  SystemOptions options;
  options.start_monitoring = false;
  ResilientSystem system(options);
  ASSERT_TRUE(system.deploy_and_wait(from).ok);

  // Two increments before, transition, two after: state continuity and
  // exactly-once execution across the swap.
  for (int i = 1; i <= 2; ++i) {
    const Value reply = system.roundtrip(kv_incr(), 20 * sim::kSecond);
    ASSERT_FALSE(reply.has("error"));
    ASSERT_EQ(reply.at("result").at("value").as_int(), i);
  }

  const auto report = system.transition_and_wait(to);
  ASSERT_TRUE(report.ok) << from.name << " -> " << to.name;
  EXPECT_EQ(report.components_shipped, from.diff_size(to));
  EXPECT_EQ(system.engine().current().name, to.name);

  for (int i = 3; i <= 4; ++i) {
    const Value reply = system.roundtrip(kv_incr(), 20 * sim::kSecond);
    ASSERT_FALSE(reply.has("error"));
    ASSERT_EQ(reply.at("result").at("value").as_int(), i)
        << "state continuity through " << from.name << " -> " << to.name;
  }

  // Both replicas agree on the architecture.
  for (std::size_t r = 0; r < 2; ++r) {
    auto& composite = system.agent(r).runtime().composite();
    EXPECT_EQ(composite.child("syncBefore").type_name(), to.sync_before);
    EXPECT_EQ(composite.child("proceed").type_name(), to.proceed);
    EXPECT_EQ(composite.child("syncAfter").type_name(), to.sync_after);
    EXPECT_TRUE(composite.validate().is_ok());
  }
}

INSTANTIATE_TEST_SUITE_P(AllPairs, TransitionMatrix,
                         ::testing::ValuesIn(all_pairs()),
                         [](const ::testing::TestParamInfo<Pair>& info) {
                           return std::get<0>(info.param) + "_to_" +
                                  std::get<1>(info.param);
                         });

// ---------------------------------------------------------------------------
// Table 1 fault-injection matrix
// ---------------------------------------------------------------------------

using Cell = std::tuple<std::string, std::string>;  // (ftm, fault)

std::vector<Cell> all_cells() {
  std::vector<Cell> cells;
  for (const auto& config : FtmConfig::standard_set()) {
    for (const char* fault : {"crash", "transient", "permanent", "software"}) {
      cells.emplace_back(config.name, fault);
    }
  }
  return cells;
}

class FaultMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(FaultMatrix, ToleranceMatchesCapabilityModel) {
  const auto& [ftm_name, fault] = GetParam();
  const FtmConfig& config = FtmConfig::by_name(ftm_name);

  SystemOptions options;
  options.start_monitoring = false;
  ResilientSystem system(options);
  ASSERT_TRUE(system.deploy_and_wait(config).ok);
  (void)system.roundtrip(kv_incr(), 20 * sim::kSecond);  // pre-fault warm-up

  if (fault == "crash") {
    system.replica(0).crash();
  } else if (fault == "permanent") {
    system.replica(0).faults().permanent = true;
  } else if (fault == "software") {
    // Development fault: the SAME bug in the primary variant on every
    // replica (common mode) — semantically wrong but checksummed results.
    for (std::size_t i = 0; i < 2; ++i) {
      if (!system.replica(i).alive()) continue;
      if (!system.agent(i).runtime().deployed()) continue;
      system.agent(i).runtime().composite().set_property("server",
                                                         "primary_bug",
                                                         Value(true));
    }
  }

  bool tolerated = true;
  std::int64_t expected = 1;  // warm-up incremented once
  for (int i = 0; i < 3; ++i) {
    if (fault == "transient") system.replica(0).faults().transient_pending = 1;
    Value reply;
    bool got = false;
    system.client().send(kv_incr(), [&](const Value& r) {
      reply = r;
      got = true;
    });
    system.sim().run_for(30 * sim::kSecond);
    ++expected;
    if (!got || reply.has("error") ||
        !app::AppServerBase::checksum_ok(reply.at("result")) ||
        reply.at("result").at("value").as_int() != expected) {
      tolerated = false;
      break;
    }
  }

  const auto cap = capability_of(config, system.app_spec());
  const bool predicted = fault == "crash"       ? cap.coverage.crash
                         : fault == "transient" ? cap.coverage.transient_value
                         : fault == "permanent" ? cap.coverage.permanent_value
                                                : cap.coverage.development;
  EXPECT_EQ(tolerated, predicted)
      << ftm_name << " under " << fault << ": Table 1 disagreement";
}

INSTANTIATE_TEST_SUITE_P(Table1, FaultMatrix, ::testing::ValuesIn(all_cells()),
                         [](const ::testing::TestParamInfo<Cell>& info) {
                           return std::get<0>(info.param) + "_" +
                                  std::get<1>(info.param);
                         });

}  // namespace
}  // namespace rcs::core
