// End-to-end adaptation: repository-served packages, distributed differential
// transitions with quiescence, crash-during-transition recovery (§5.3), and
// the monolithic baseline.
#include <gtest/gtest.h>

#include "rcs/core/system.hpp"

namespace rcs::core {
namespace {

using ftm::FtmConfig;

struct AdaptationFixture : ::testing::Test {
  static SystemOptions quiet_options() {
    SystemOptions options;
    options.start_monitoring = false;  // engine-focused tests drive manually
    return options;
  }

  AdaptationFixture() : system(quiet_options()) {}

  static Value kv_incr(const std::string& key) {
    return Value::map().set("op", "incr").set("key", key).set("by", 1);
  }
  static Value kv_get(const std::string& key) {
    return Value::map().set("op", "get").set("key", key);
  }

  ResilientSystem system;
};

TEST_F(AdaptationFixture, InitialDeploymentBringsServiceUp) {
  const auto report = system.deploy_and_wait(FtmConfig::pbr());
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.kind, "deploy");
  ASSERT_EQ(report.replicas.size(), 2u);
  for (const auto& replica : report.replicas) {
    EXPECT_TRUE(replica.ok);
    EXPECT_GT(replica.timings.deploy, 0);
    EXPECT_GT(replica.timings.script, 0);
  }
  // Deployment lands in the paper's ballpark (Table 3 first row ~3.8s).
  EXPECT_GT(report.mean_replica_total(), 3000 * sim::kMillisecond);
  EXPECT_LT(report.mean_replica_total(), 4800 * sim::kMillisecond);

  const Value reply = system.roundtrip(kv_incr("x"));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 1);
}

TEST_F(AdaptationFixture, DifferentialTransitionSwapsOnlyChangedBricks) {
  system.deploy_and_wait(FtmConfig::pbr());
  const auto report = system.transition_and_wait(FtmConfig::lfr());
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.components_shipped, 2);  // syncBefore + syncAfter
  EXPECT_EQ(system.engine().current().name, "LFR");
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(system.agent(i).runtime().params().config.name, "LFR");
    // The common parts survived the transition.
    auto& composite = system.agent(i).runtime().composite();
    EXPECT_EQ(composite.child("syncBefore").type_name(),
              ftm::brick::kSyncBeforeLfr);
    EXPECT_EQ(composite.child("proceed").type_name(),
              ftm::brick::kProceedCompute);
  }
  const Value reply = system.roundtrip(kv_incr("x"));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 1);
}

TEST_F(AdaptationFixture, TransitionIsMuchFasterThanDeployment) {
  const auto deploy_report = system.deploy_and_wait(FtmConfig::pbr());
  const auto transition_report = system.transition_and_wait(FtmConfig::lfr());
  ASSERT_TRUE(transition_report.ok);
  // The paper's headline ratio: differential transitions cost a fraction of
  // redeployment (Table 3: ~1s vs ~3.8s).
  EXPECT_LT(transition_report.mean_replica_total() * 2,
            deploy_report.mean_replica_total());
}

TEST_F(AdaptationFixture, TransitionTimeGrowsWithComponentsReplaced) {
  system.deploy_and_wait(FtmConfig::lfr());
  const auto one = system.transition_and_wait(FtmConfig::lfr_tr());  // 1 brick
  const auto back = system.transition_and_wait(FtmConfig::lfr());
  ASSERT_TRUE(back.ok);
  const auto two = system.transition_and_wait(FtmConfig::a_pbr());  // 2 bricks
  const auto back2 = system.transition_and_wait(FtmConfig::pbr());
  ASSERT_TRUE(back2.ok);
  const auto three = system.transition_and_wait(FtmConfig::lfr_tr());  // 3
  EXPECT_EQ(one.components_shipped, 1);
  EXPECT_EQ(two.components_shipped, 2);
  EXPECT_EQ(three.components_shipped, 3);
  EXPECT_LT(one.mean_replica_total(), two.mean_replica_total());
  EXPECT_LT(two.mean_replica_total(), three.mean_replica_total());
}

TEST_F(AdaptationFixture, StatePreservedAcrossTransition) {
  system.deploy_and_wait(FtmConfig::pbr());
  for (int i = 0; i < 3; ++i) (void)system.roundtrip(kv_incr("ctr"));
  const auto report = system.transition_and_wait(FtmConfig::lfr_tr());
  ASSERT_TRUE(report.ok);
  // Differential transitions never touch the server component: no state
  // transfer, no state loss (§6.1).
  const Value reply = system.roundtrip(kv_incr("ctr"));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 4);
}

TEST_F(AdaptationFixture, RequestsDuringTransitionAreBufferedNotLost) {
  system.deploy_and_wait(FtmConfig::pbr());
  int replies = 0;
  std::optional<TransitionReport> report;
  system.engine().transition(FtmConfig::lfr(),
                             [&](const TransitionReport& r) { report = r; });
  // Fire requests while the transition is in flight.
  for (int i = 0; i < 6; ++i) {
    system.client().send(kv_incr("n"), [&](const Value& r) {
      ASSERT_FALSE(r.has("error")) << r.to_string();
      ++replies;
    });
    system.sim().run_for(200 * sim::kMillisecond);
  }
  system.sim().run_for(20 * sim::kSecond);
  ASSERT_TRUE(report.has_value());
  EXPECT_TRUE(report->ok);
  EXPECT_EQ(replies, 6);
  const Value reply = system.roundtrip(kv_get("n"));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 6) << "exactly once each";
}

TEST_F(AdaptationFixture, AllTable3PairsTransitionCleanly) {
  system.deploy_and_wait(FtmConfig::pbr());
  // Walk a path covering many pairs; service must survive every hop.
  const std::vector<const FtmConfig*> path = {
      &FtmConfig::lfr(),    &FtmConfig::lfr_tr(), &FtmConfig::a_lfr(),
      &FtmConfig::a_pbr(),  &FtmConfig::pbr_tr(), &FtmConfig::pbr(),
      &FtmConfig::a_lfr(),  &FtmConfig::lfr()};
  int expected = 0;
  (void)system.roundtrip(kv_incr("ctr"));
  ++expected;
  for (const auto* target : path) {
    const auto report = system.transition_and_wait(*target);
    ASSERT_TRUE(report.ok) << "transition to " << target->name;
    const Value reply = system.roundtrip(kv_incr("ctr"));
    ASSERT_FALSE(reply.has("error"));
    ++expected;
    EXPECT_EQ(reply.at("result").at("value").as_int(), expected)
        << "state continuity through " << target->name;
  }
}

TEST_F(AdaptationFixture, TransitionSucceedsWhileRequestsAreFailing) {
  // Regression: a master that FAILS requests (here: TR without majority
  // under a permanent fault) must abort the follower's forwarded contexts,
  // or the follower can never quiesce and silently misses the transition.
  system.deploy_and_wait(FtmConfig::lfr_tr());
  system.replica(0).faults().permanent = true;
  for (int i = 0; i < 3; ++i) {
    (void)system.roundtrip(kv_incr("k"), 20 * sim::kSecond);  // error replies
  }
  const auto report = system.transition_and_wait(FtmConfig::a_lfr());
  ASSERT_TRUE(report.ok) << "both replicas must complete the transition";
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(system.agent(i).runtime().composite().child("syncAfter").type_name(),
              ftm::brick::kSyncAfterLfrAssert);
  }
  // A&LFR now masks the permanent fault via re-execution on the follower.
  const Value reply = system.roundtrip(kv_incr("k"), 20 * sim::kSecond);
  EXPECT_FALSE(reply.has("error")) << reply.to_string();
}

TEST_F(AdaptationFixture, ScriptFailureKillsReplicaAndSurvivorServesAlone) {
  system.deploy_and_wait(FtmConfig::pbr());
  (void)system.roundtrip(kv_incr("ctr"));

  // §5.3: the backup's reconfiguration fails -> it kills itself; the
  // primary completes the transition and serves master-alone.
  system.engine().inject_script_failure_on(system.replica(1).id());
  const auto report = system.transition_and_wait(FtmConfig::lfr());
  EXPECT_FALSE(report.ok);
  ASSERT_EQ(report.replicas.size(), 2u);
  EXPECT_TRUE(report.replicas[0].ok);
  EXPECT_FALSE(report.replicas[1].ok);
  EXPECT_FALSE(system.replica(1).alive()) << "fail-silent enforcement";

  system.sim().run_for(sim::kSecond);  // failure detector notices
  EXPECT_EQ(system.agent(0).runtime().kernel().role(), ftm::Role::kAlone);
  EXPECT_EQ(system.agent(0).runtime().params().config.name, "LFR");
  const Value reply = system.roundtrip(kv_incr("ctr"), 20 * sim::kSecond);
  ASSERT_FALSE(reply.has("error"));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 2);
}

TEST_F(AdaptationFixture, RestartedReplicaRecoversIntoSurvivorsConfiguration) {
  system.deploy_and_wait(FtmConfig::pbr());
  system.engine().inject_script_failure_on(system.replica(1).id());
  (void)system.transition_and_wait(FtmConfig::lfr());
  system.sim().run_for(sim::kSecond);
  ASSERT_FALSE(system.replica(1).alive());

  // §5.3: the restarted replica must come back in the configuration its
  // counterpart completed (LFR), not the one it crashed in (PBR).
  system.replica(1).restart();
  system.sim().run_for(2 * sim::kSecond);
  EXPECT_TRUE(system.agent(1).runtime().deployed());
  EXPECT_EQ(system.agent(1).runtime().params().config.name, "LFR");
  EXPECT_EQ(system.agent(1).runtime().kernel().role(), ftm::Role::kBackup);
  EXPECT_EQ(system.agent(0).runtime().kernel().role(), ftm::Role::kPrimary);
}

TEST_F(AdaptationFixture, BrickRefreshUpdatesInPlace) {
  // §3.2.1: "for RB, an update consists of changing the acceptance test" —
  // ship a new build of ONE brick of the running FTM without changing it.
  system.deploy_and_wait(FtmConfig::a_pbr());
  for (int i = 0; i < 2; ++i) (void)system.roundtrip(kv_incr("ctr"));

  const auto report = system.refresh_and_wait("syncAfter");
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.kind, "refresh");
  EXPECT_EQ(report.components_shipped, 1);
  EXPECT_EQ(system.engine().current().name, "A_PBR") << "FTM unchanged";

  // The refreshed brick works (assertion machinery intact) and state held.
  system.replica(0).faults().transient_pending = 1;
  const Value reply = system.roundtrip(kv_incr("ctr"), 20 * sim::kSecond);
  ASSERT_FALSE(reply.has("error"));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 3);
  EXPECT_GE(system.agent(0).runtime().kernel().counters().assertion_failures,
            1u);
}

TEST_F(AdaptationFixture, RefreshScriptGuardsSlotType) {
  // The refresh script carries require-guards: applying it to a slot whose
  // type changed in the meantime must roll back, not corrupt.
  system.deploy_and_wait(FtmConfig::pbr());
  const ftm::ScriptBuilder builder(comp::ComponentRegistry::instance());
  const std::string source = builder.refresh_script(
      FtmConfig::lfr(), "syncAfter", system.app_spec());  // wrong FTM!
  EXPECT_THROW(system.agent(0).runtime().run_transition(source, FtmConfig::pbr()),
               ScriptException);
  EXPECT_EQ(system.agent(0).runtime().composite().child("syncAfter").type_name(),
            ftm::brick::kSyncAfterPbr)
      << "guarded script left the architecture untouched";
}

TEST_F(AdaptationFixture, MonolithicReplacementWorksButCostsMore) {
  system.deploy_and_wait(FtmConfig::pbr());
  for (int i = 0; i < 3; ++i) (void)system.roundtrip(kv_incr("ctr"));

  const auto report = system.monolithic_and_wait(FtmConfig::lfr());
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.kind, "monolithic");
  // State survived via explicit transfer.
  const Value reply = system.roundtrip(kv_incr("ctr"));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 4);
  // Monolithic replacement pays state transfer + full package.
  for (const auto& replica : report.replicas) {
    EXPECT_GT(replica.timings.state_transfer, 0);
  }
  EXPECT_GT(report.components_shipped, 3);
}

TEST_F(AdaptationFixture, MonolithicSlowerThanDifferential) {
  system.deploy_and_wait(FtmConfig::pbr());
  const auto differential = system.transition_and_wait(FtmConfig::lfr());
  const auto monolithic = system.monolithic_and_wait(FtmConfig::pbr());
  ASSERT_TRUE(differential.ok);
  ASSERT_TRUE(monolithic.ok);
  EXPECT_GT(monolithic.mean_replica_total(),
            differential.mean_replica_total());
}

TEST_F(AdaptationFixture, RepositoryCachesPackages) {
  system.deploy_and_wait(FtmConfig::pbr());
  const auto before = system.repository().cache_size();
  (void)system.transition_and_wait(FtmConfig::lfr());
  const auto after_first = system.repository().cache_size();
  EXPECT_EQ(after_first, before + 1);
  (void)system.transition_and_wait(FtmConfig::pbr());
  (void)system.transition_and_wait(FtmConfig::lfr());
  EXPECT_EQ(system.repository().cache_size(), after_first + 1)
      << "repeated LFR package came from the cache";
}

TEST_F(AdaptationFixture, PackageBytesScaleWithComponentsShipped) {
  system.deploy_and_wait(FtmConfig::lfr());
  const auto one = system.transition_and_wait(FtmConfig::lfr_tr());
  (void)system.transition_and_wait(FtmConfig::lfr());
  const auto deploy_again = system.monolithic_and_wait(FtmConfig::pbr());
  EXPECT_LT(one.package_bytes, deploy_again.package_bytes)
      << "differential packages carry only the new bricks";
}

}  // namespace
}  // namespace rcs::core
