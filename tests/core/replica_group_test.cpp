// N-replica groups (§3.2.1: "We could also consider multiple Backups or
// Followers"): three-replica deployments, cascaded failover by rank,
// multi-backup checkpoint acknowledgements, group-wide transitions, and
// recovery back into a group.
#include <gtest/gtest.h>

#include "rcs/core/system.hpp"

namespace rcs::core {
namespace {

using ftm::FtmConfig;
using ftm::Role;

struct GroupFixture : ::testing::Test {
  static SystemOptions make_options() {
    SystemOptions options;
    options.replica_count = 3;
    options.start_monitoring = false;
    return options;
  }

  GroupFixture() : system(make_options()) {}

  static Value kv_incr() {
    return Value::map().set("op", "incr").set("key", "k").set("by", 1);
  }

  ResilientSystem system;
};

TEST_F(GroupFixture, ThreeReplicaPbrServesAndCheckpointsToAllBackups) {
  ASSERT_TRUE(system.deploy_and_wait(FtmConfig::pbr()).ok);
  for (int i = 1; i <= 3; ++i) {
    const Value reply = system.roundtrip(kv_incr(), 20 * sim::kSecond);
    ASSERT_FALSE(reply.has("error"));
    EXPECT_EQ(reply.at("result").at("value").as_int(), i);
  }
  // Every backup applied every checkpoint (the primary waits for BOTH acks).
  EXPECT_EQ(system.agent(0).runtime().kernel().counters().checkpoints_sent, 3u);
  EXPECT_EQ(system.agent(1).runtime().kernel().counters().checkpoints_applied, 3u);
  EXPECT_EQ(system.agent(2).runtime().kernel().counters().checkpoints_applied, 3u);
}

TEST_F(GroupFixture, CascadedFailoverByRank) {
  // The paper's duplex tolerates ONE crash; a 3-replica group tolerates two,
  // promoting deterministically by lowest live host id.
  ASSERT_TRUE(system.deploy_and_wait(FtmConfig::pbr()).ok);
  for (int i = 1; i <= 2; ++i) (void)system.roundtrip(kv_incr(), 20 * sim::kSecond);

  system.replica(0).crash();
  Value reply = system.roundtrip(kv_incr(), 30 * sim::kSecond);  // k = 3
  ASSERT_FALSE(reply.has("error"));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 3);
  EXPECT_EQ(system.agent(1).runtime().kernel().role(), Role::kPrimary)
      << "replica1 is the lowest live id";
  EXPECT_EQ(system.agent(2).runtime().kernel().role(), Role::kBackup);

  system.replica(1).crash();
  reply = system.roundtrip(kv_incr(), 30 * sim::kSecond);  // k = 4
  ASSERT_FALSE(reply.has("error"));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 4)
      << "state survived TWO crashes via cascaded checkpoints";
  EXPECT_EQ(system.agent(2).runtime().kernel().role(), Role::kAlone);
}

TEST_F(GroupFixture, ThreeReplicaLfrAllFollowersCompute) {
  ASSERT_TRUE(system.deploy_and_wait(FtmConfig::lfr()).ok);
  for (int i = 0; i < 4; ++i) (void)system.roundtrip(kv_incr(), 20 * sim::kSecond);
  system.sim().run_for(sim::kSecond);
  EXPECT_EQ(system.agent(1).runtime().kernel().counters().forwarded, 4u);
  EXPECT_EQ(system.agent(2).runtime().kernel().counters().forwarded, 4u);
  // All three burned comparable CPU (active replication across the group).
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_GE(system.replica(i).meter().cpu_used(), 4 * 5 * sim::kMillisecond);
  }
}

TEST_F(GroupFixture, LfrFailoverKeepsComputedState) {
  ASSERT_TRUE(system.deploy_and_wait(FtmConfig::lfr()).ok);
  for (int i = 1; i <= 3; ++i) (void)system.roundtrip(kv_incr(), 20 * sim::kSecond);
  system.replica(0).crash();
  const Value reply = system.roundtrip(kv_incr(), 30 * sim::kSecond);
  ASSERT_FALSE(reply.has("error"));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 4)
      << "the promoted follower had computed every request";
}

TEST_F(GroupFixture, GroupWideDifferentialTransition) {
  ASSERT_TRUE(system.deploy_and_wait(FtmConfig::pbr()).ok);
  (void)system.roundtrip(kv_incr(), 20 * sim::kSecond);
  const auto report = system.transition_and_wait(FtmConfig::lfr_tr());
  ASSERT_TRUE(report.ok);
  ASSERT_EQ(report.replicas.size(), 3u);
  for (const auto& outcome : report.replicas) {
    EXPECT_TRUE(outcome.ok);
  }
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(system.agent(i).runtime().params().config.name, "LFR_TR");
  }
  const Value reply = system.roundtrip(kv_incr(), 20 * sim::kSecond);
  ASSERT_FALSE(reply.has("error"));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 2);
}

TEST_F(GroupFixture, AssertRecoveryPicksALiveBackup) {
  ASSERT_TRUE(system.deploy_and_wait(FtmConfig::a_pbr()).ok);
  system.replica(0).faults().permanent = true;
  for (int i = 1; i <= 3; ++i) {
    const Value reply = system.roundtrip(kv_incr(), 30 * sim::kSecond);
    ASSERT_FALSE(reply.has("error")) << reply.to_string();
    EXPECT_EQ(reply.at("result").at("value").as_int(), i)
        << "re-execution on a live backup masked the permanent fault";
  }
}

TEST_F(GroupFixture, CrashedMemberRecoversIntoTheGroup) {
  ASSERT_TRUE(system.deploy_and_wait(FtmConfig::pbr()).ok);
  (void)system.roundtrip(kv_incr(), 20 * sim::kSecond);

  system.replica(2).crash();
  system.sim().run_for(sim::kSecond);
  (void)system.roundtrip(kv_incr(), 20 * sim::kSecond);  // k = 2 while degraded

  system.replica(2).restart();
  system.sim().run_for(3 * sim::kSecond);
  ASSERT_TRUE(system.agent(2).runtime().deployed());
  EXPECT_EQ(system.agent(2).runtime().kernel().role(), Role::kBackup);

  // The rejoined member now protects against the next crashes.
  system.replica(0).crash();
  system.sim().run_for(sim::kSecond);
  system.replica(1).crash();
  const Value reply = system.roundtrip(kv_incr(), 60 * sim::kSecond);
  ASSERT_FALSE(reply.has("error")) << reply.to_string();
  EXPECT_EQ(reply.at("result").at("value").as_int(), 3)
      << "the rejoined replica carried the full state";
}

TEST_F(GroupFixture, GroupSurvivesLossyLinks) {
  // 10% loss on every replica link: broadcast checkpoints retransmit, and
  // duplicate acks from re-broadcasts must be absorbed per peer (no
  // premature advance of the all-ack wait).
  ASSERT_TRUE(system.deploy_and_wait(FtmConfig::pbr()).ok);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = i + 1; j < 3; ++j) {
      system.sim().network().link(system.replica(i).id(),
                                  system.replica(j).id()).drop_rate = 0.10;
    }
  }
  for (int i = 1; i <= 10; ++i) {
    const Value reply = system.roundtrip(kv_incr(), 60 * sim::kSecond);
    ASSERT_FALSE(reply.has("error")) << "request " << i;
    ASSERT_EQ(reply.at("result").at("value").as_int(), i) << "exactly once";
  }
}

TEST_F(GroupFixture, BackupDeathDuringCheckpointWaitDoesNotWedge) {
  // The primary is waiting for TWO acks; one backup dies before acking. The
  // kernel re-runs the phase against the surviving group and the request
  // completes with the remaining ack.
  ASSERT_TRUE(system.deploy_and_wait(FtmConfig::pbr()).ok);
  Value reply;
  system.client().send(kv_incr(), [&](const Value& r) { reply = r; });
  system.sim().run_for(7 * sim::kMillisecond);  // compute done, acks pending
  system.replica(2).crash();
  system.sim().run_for(5 * sim::kSecond);
  ASSERT_TRUE(reply.is_map()) << "request wedged on a dead backup's ack";
  EXPECT_FALSE(reply.has("error"));
  // The survivor pair keeps serving.
  const Value next = system.roundtrip(kv_incr(), 30 * sim::kSecond);
  ASSERT_FALSE(next.has("error"));
  EXPECT_EQ(next.at("result").at("value").as_int(), 2);
}

TEST_F(GroupFixture, FiveReplicaGroupStillWorks) {
  SystemOptions options = make_options();
  options.replica_count = 5;
  ResilientSystem large(options);
  ASSERT_TRUE(large.deploy_and_wait(FtmConfig::pbr()).ok);
  for (int i = 1; i <= 2; ++i) {
    const Value reply = large.roundtrip(kv_incr(), 30 * sim::kSecond);
    ASSERT_FALSE(reply.has("error"));
    EXPECT_EQ(reply.at("result").at("value").as_int(), i);
  }
  // Four backups, four checkpoint applications per request.
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(large.agent(i).runtime().kernel().counters().checkpoints_applied,
              2u)
        << "backup " << i;
  }
  // Regression: staggered bootstraps must not self-elect a booting replica
  // (the failure detector's startup grace).
  EXPECT_EQ(large.agent(0).runtime().kernel().role(), Role::kPrimary);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(large.agent(i).runtime().kernel().role(), Role::kBackup)
        << "replica " << i << " split off during deployment";
  }
}

}  // namespace
}  // namespace rcs::core
