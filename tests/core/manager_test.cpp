// Monitoring-to-manager loop: triggers, mandatory vs possible decisions,
// man-in-the-loop approval, oscillation avoidance, no-solution detection.
#include <gtest/gtest.h>

#include "rcs/core/system.hpp"

namespace rcs::core {
namespace {

using ftm::FtmConfig;

struct ManagerFixture : ::testing::Test {
  ManagerFixture() : system(make_options()) {}

  static SystemOptions make_options() {
    SystemOptions options;
    options.start_monitoring = true;
    options.monitor_interval = 200 * sim::kMillisecond;
    return options;
  }

  static Value kv_incr(const std::string& key) {
    return Value::map().set("op", "incr").set("key", key).set("by", 1);
  }

  ResilientSystem system;
};

TEST_F(ManagerFixture, BandwidthDropTriggersMandatoryPbrToLfr) {
  system.deploy_and_wait(FtmConfig::pbr());
  // The environment degrades: the replica link collapses to 3.2 Mbit/s.
  system.sim().network().link(system.replica(0).id(), system.replica(1).id())
      .bandwidth_bps = 400'000.0;
  system.sim().run_for(30 * sim::kSecond);

  EXPECT_EQ(system.engine().current().name, "LFR");
  ASSERT_FALSE(system.manager().history().empty());
  const auto& entry = system.manager().history().back();
  EXPECT_EQ(entry.decision, DecisionKind::kMandatory);
  EXPECT_TRUE(entry.executed);
  // Service still up under the new FTM.
  const Value reply = system.roundtrip(kv_incr("x"), 20 * sim::kSecond);
  EXPECT_FALSE(reply.has("error"));
}

TEST_F(ManagerFixture, BandwidthRestoredIsOnlyPossibleAndNeedsApproval) {
  system.deploy_and_wait(FtmConfig::pbr());
  auto& link = system.sim().network().link(system.replica(0).id(),
                                           system.replica(1).id());
  link.bandwidth_bps = 400'000.0;
  system.sim().run_for(30 * sim::kSecond);
  ASSERT_EQ(system.engine().current().name, "LFR");

  // Bandwidth comes back. Without manager approval the system must NOT
  // oscillate back to PBR (§5.4: the reverse of a mandatory transition is a
  // possible one).
  link.bandwidth_bps = 12'500'000.0;
  system.sim().run_for(30 * sim::kSecond);
  EXPECT_EQ(system.engine().current().name, "LFR");
  bool saw_unexecuted_possible = false;
  for (const auto& entry : system.manager().history()) {
    if (entry.decision == DecisionKind::kPossible && !entry.executed) {
      saw_unexecuted_possible = true;
    }
  }
  EXPECT_TRUE(saw_unexecuted_possible);

  // With the system manager approving, the possible transition executes.
  system.manager().set_approval_policy(
      [](const FtmConfig&, const std::string&) { return true; });
  link.bandwidth_bps = 400'000.0;
  system.sim().run_for(30 * sim::kSecond);  // still LFR (mandatory path idle)
  link.bandwidth_bps = 12'500'000.0;
  system.sim().run_for(40 * sim::kSecond);
  EXPECT_EQ(system.engine().current().name, "PBR");
}

TEST_F(ManagerFixture, OscillatingBandwidthDoesNotFlapFtms) {
  system.deploy_and_wait(FtmConfig::pbr());
  auto& link = system.sim().network().link(system.replica(0).id(),
                                           system.replica(1).id());
  std::size_t executed = 0;
  for (int cycle = 0; cycle < 4; ++cycle) {
    link.bandwidth_bps = 400'000.0;
    system.sim().run_for(10 * sim::kSecond);
    link.bandwidth_bps = 12'500'000.0;
    system.sim().run_for(10 * sim::kSecond);
  }
  for (const auto& entry : system.manager().history()) {
    if (entry.executed) ++executed;
  }
  // Exactly one mandatory PBR->LFR; the restores are unexecuted possibles.
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(system.engine().current().name, "LFR");
}

TEST_F(ManagerFixture, ObservedValueFaultsEscalateTheFaultModel) {
  system.deploy_and_wait(FtmConfig::pbr_tr());
  // A burst of transient faults hits the primary; TR masks them, the
  // monitoring engine counts the mismatch events.
  for (int i = 0; i < 3; ++i) {
    system.replica(0).faults().transient_pending = 1;
    (void)system.roundtrip(kv_incr("x"), 20 * sim::kSecond);
  }
  system.sim().run_for(5 * sim::kSecond);
  EXPECT_GE(system.monitoring().events_observed("tr_mismatch"), 2u);
  EXPECT_TRUE(system.manager().state().fault_model.transient_value)
      << "FT dimension updated from observed evidence";
  // PBR⊕TR already covers transients: no transition needed.
  EXPECT_EQ(system.engine().current().name, "PBR_TR");
}

TEST_F(ManagerFixture, PermanentFaultEvidenceForcesAssertionFtm) {
  system.deploy_and_wait(FtmConfig::pbr_tr());
  // Hardware aging: every computation on the primary is corrupted. TR can
  // detect (no majority) but not mask it; the monitoring engine should
  // escalate to a permanent fault model, which only A&Duplex covers.
  system.replica(0).faults().permanent = true;
  for (int i = 0; i < 6; ++i) {
    system.client().send(kv_incr("x"), [](const Value&) {});
    system.sim().run_for(2 * sim::kSecond);
  }
  system.sim().run_for(60 * sim::kSecond);
  EXPECT_TRUE(system.manager().state().fault_model.permanent_value);
  const auto& current = system.engine().current().name;
  EXPECT_TRUE(current == "A_PBR" || current == "A_LFR") << current;
  // And the system actually masks the permanent fault now.
  const Value reply = system.roundtrip(kv_incr("x"), 30 * sim::kSecond);
  EXPECT_FALSE(reply.has("error")) << reply.to_string();
}

TEST_F(ManagerFixture, ProactiveCriticalPhaseChangeViaManagerInput) {
  system.deploy_and_wait(FtmConfig::lfr());
  // §5.4: entering a more critical phase strengthens the fault model BEFORE
  // faults occur (proactive FT transition).
  system.manager().notify_fault_model_change(FaultModel{true, true, false},
                                             "start of critical phase");
  system.sim().run_for(30 * sim::kSecond);
  EXPECT_EQ(system.engine().current().name, "LFR_TR");
  const auto& entry = system.manager().history().back();
  EXPECT_EQ(entry.decision, DecisionKind::kMandatory);
}

TEST_F(ManagerFixture, AppVersionChangeToNondeterministicLeavesLfr) {
  system.deploy_and_wait(FtmConfig::lfr());
  ftm::AppSpec new_version = system.app_spec();
  new_version.deterministic = false;
  system.manager().notify_app_change(new_version, "v2.0 rollout");
  system.sim().run_for(30 * sim::kSecond);
  EXPECT_EQ(system.engine().current().name, "PBR")
      << "non-determinism invalidates active replication (Table 1)";
}

TEST_F(ManagerFixture, NoGenericSolutionIsDetectedAndReported) {
  system.deploy_and_wait(FtmConfig::pbr());
  ftm::AppSpec hopeless = system.app_spec();
  hopeless.deterministic = false;
  hopeless.state_access = false;
  hopeless.has_assertion = false;
  system.manager().notify_app_change(hopeless, "worst-case version");
  EXPECT_TRUE(system.manager().no_solution());
  EXPECT_EQ(system.manager().history().back().decision,
            DecisionKind::kNoSolution);
}

TEST_F(ManagerFixture, DivergenceEvidenceAbandonsActiveReplication) {
  // LFR was deployed assuming determinism; the application actually behaves
  // non-deterministically. The follower's divergence reports reach the
  // monitoring engine, which corrects the A parameters; leaving LFR becomes
  // mandatory.
  SystemOptions options = make_options();
  options.app_type = "app.sensor";
  ResilientSystem sensors(options);
  // Pretend the A characteristics claimed determinism (mis-declared app).
  ftm::AppSpec claimed = sensors.app_spec();
  claimed.deterministic = true;
  sensors.manager().notify_app_change(claimed, "declared deterministic");
  sensors.deploy_and_wait(FtmConfig::lfr());
  for (int i = 0; i < 6; ++i) {
    (void)sensors.roundtrip(Value::map().set("op", "read").set("target", 50.0),
                            20 * sim::kSecond);
  }
  sensors.sim().run_for(30 * sim::kSecond);
  EXPECT_GE(sensors.monitoring().events_observed("divergence"), 2u);
  EXPECT_FALSE(sensors.manager().state().app.deterministic);
  EXPECT_EQ(sensors.engine().current().name, "PBR");
}

TEST_F(ManagerFixture, SuspectedSoftwareFaultMovesToRecoveryBlocks) {
  // §2/§3.2.1: a new application version is suspected of development faults
  // (e.g. a hurried OTA fix). The manager strengthens the fault model
  // proactively; PBR⊕RB is the only standard FTM with design diversity.
  system.deploy_and_wait(FtmConfig::pbr());
  FaultModel with_dev{true, false, false, true};
  system.manager().notify_fault_model_change(with_dev, "unvetted hotfix v1.3");
  system.sim().run_for(30 * sim::kSecond);
  ASSERT_EQ(system.engine().current().name, "PBR_RB");

  // The suspicion was justified: the primary variant IS buggy everywhere.
  for (std::size_t i = 0; i < 2; ++i) {
    system.agent(i).runtime().composite().set_property("server", "primary_bug",
                                                       Value(true));
  }
  const Value reply = system.roundtrip(kv_incr("x"), 20 * sim::kSecond);
  ASSERT_FALSE(reply.has("error")) << reply.to_string();
  EXPECT_GT(reply.at("result").at("value").as_int(), 0)
      << "recovery blocks masked the development fault";

  // Once v1.4 is vetted, relaxation back to plain PBR is a possible
  // transition requiring approval.
  system.manager().set_approval_policy(
      [](const FtmConfig&, const std::string&) { return true; });
  system.manager().notify_fault_model_change(FaultModel{true, false, false},
                                             "v1.4 formally verified");
  system.sim().run_for(30 * sim::kSecond);
  EXPECT_EQ(system.engine().current().name, "PBR");
}

TEST_F(ManagerFixture, IntraFtmTransitionRecordsContextChange) {
  // Fig. 8's dotted edges: the app becomes non-deterministic while running
  // PBR — PBR stays valid, so the FTM is kept, but an intra-FTM transition
  // updates the configuration context on every replica.
  system.deploy_and_wait(FtmConfig::pbr());
  ftm::AppSpec v2 = system.app_spec();
  v2.deterministic = false;
  system.manager().notify_app_change(v2, "v2: non-deterministic");
  system.sim().run_for(5 * sim::kSecond);

  ASSERT_FALSE(system.manager().history().empty());
  const auto& entry = system.manager().history().back();
  EXPECT_EQ(entry.decision, DecisionKind::kIntraFtm);
  EXPECT_TRUE(entry.executed);
  EXPECT_EQ(system.engine().current().name, "PBR");
  for (std::size_t i = 0; i < 2; ++i) {
    const Value context =
        system.agent(i).runtime().composite().property("protocol", "context");
    ASSERT_TRUE(context.is_map()) << "context not propagated to replica " << i;
    EXPECT_FALSE(context.at("deterministic").as_bool());
  }
  // A second identical notification changes nothing: no new intra entry.
  const auto history_size = system.manager().history().size();
  system.manager().notify_app_change(v2, "v2 again");
  EXPECT_EQ(system.manager().history().back().decision,
            DecisionKind::kNoChange);
  EXPECT_EQ(system.manager().history().size(), history_size + 1);
}

TEST_F(ManagerFixture, WorkloadSaturationForcesLeanerFtm) {
  // The link capacity is intact but the WORKLOAD grows until PBR's
  // checkpoint traffic saturates it: the utilization probe (measured
  // bytes/s, §3.1 "measure resource usage") must trigger a mandatory move
  // to the bandwidth-lean LFR.
  SystemOptions options = make_options();
  options.replica_bandwidth_bps = 1'250'000.0;           // 10 Mbit/s
  options.thresholds.bandwidth_low_bps = 0.2e6;          // capacity is fine
  options.thresholds.bandwidth_high_bps = 0.4e6;
  ResilientSystem loaded(options);
  // Full (non-incremental) checkpoints: the worst-case bandwidth profile
  // this saturation scenario is about. Delta checkpointing — the default —
  // is exactly the remedy; the sibling test below covers it.
  FtmConfig pbr_full = FtmConfig::pbr();
  pbr_full.delta_checkpoint = false;
  ASSERT_TRUE(loaded.deploy_and_wait(pbr_full).ok);

  // ~120 requests/s for a while: ~560 KB/s of checkpoints on a 1.25 MB/s
  // link — 45% utilization, past the 35% saturation latch.
  int ok = 0;
  for (int i = 0; i < 1200; ++i) {
    loaded.client().send(kv_incr("k"), [&ok](const Value& r) {
      if (!r.has("error")) ++ok;
    });
    loaded.sim().run_for(8300);  // ~8.3 ms
  }
  loaded.sim().run_for(30 * sim::kSecond);

  EXPECT_EQ(loaded.engine().current().name, "LFR")
      << "saturation did not force the bandwidth-lean FTM";
  bool saw_saturation = false;
  for (const auto& trigger : loaded.monitoring().trigger_log()) {
    if (trigger.kind == TriggerKind::kLinkSaturated) saw_saturation = true;
  }
  EXPECT_TRUE(saw_saturation);
  EXPECT_GT(loaded.manager().state().resources.request_rate, 80.0)
      << "workload intensity inferred from the measured traffic";
  EXPECT_GE(ok, 1150) << "the service rode out the saturation + transition";
}

TEST_F(ManagerFixture, DeltaCheckpointingRidesOutTheSameWorkload) {
  // Same link, same workload, default (incremental) checkpoints: kv_incr's
  // dirty set is a single key, so the replica traffic stays far below the
  // saturation latch and the manager never has to abandon PBR.
  SystemOptions options = make_options();
  options.replica_bandwidth_bps = 1'250'000.0;
  options.thresholds.bandwidth_low_bps = 0.2e6;
  options.thresholds.bandwidth_high_bps = 0.4e6;
  ResilientSystem loaded(options);
  ASSERT_TRUE(loaded.deploy_and_wait(FtmConfig::pbr()).ok);

  int ok = 0;
  for (int i = 0; i < 600; ++i) {
    loaded.client().send(kv_incr("k"), [&ok](const Value& r) {
      if (!r.has("error")) ++ok;
    });
    loaded.sim().run_for(8300);  // ~8.3 ms
  }
  loaded.sim().run_for(10 * sim::kSecond);

  EXPECT_EQ(loaded.engine().current().name, "PBR")
      << "delta checkpoints must not trip the saturation trigger";
  for (const auto& trigger : loaded.monitoring().trigger_log()) {
    EXPECT_NE(trigger.kind, TriggerKind::kLinkSaturated);
  }
  EXPECT_EQ(ok, 600);
}

TEST_F(ManagerFixture, DeferredMandatoryTransitionIsRetried) {
  // A mandatory FT change lands while the engine is mid-transition: the
  // manager must retry it once the engine frees up, not drop it.
  system.deploy_and_wait(FtmConfig::pbr());
  bool manual_done = false;
  system.engine().transition(
      FtmConfig::lfr(),
      [&manual_done](const TransitionReport&) { manual_done = true; });
  system.manager().notify_fault_model_change(FaultModel{true, true, false},
                                             "radiation while busy");
  ASSERT_FALSE(system.manager().history().back().executed) << "deferred";
  system.sim().run_for(60 * sim::kSecond);
  EXPECT_TRUE(manual_done);
  EXPECT_EQ(system.engine().current().name, "LFR_TR")
      << "the deferred mandatory transition eventually executed";
}

TEST_F(ManagerFixture, MonitoringMeasuresServiceThroughput) {
  system.deploy_and_wait(FtmConfig::pbr());
  // Steady 20 requests/s for 5 s; the monitoring engine's telemetry-based
  // rate estimate should settle near it.
  for (int i = 0; i < 100; ++i) {
    system.client().send(kv_incr("k"), [](const Value&) {});
    system.sim().run_for(50 * sim::kMillisecond);
  }
  const double rate = system.monitoring().request_rate();
  EXPECT_GT(rate, 12.0) << "measured " << rate;
  EXPECT_LT(rate, 30.0) << "measured " << rate;
}

TEST_F(ManagerFixture, TriggerLogRecordsFiredTriggers) {
  system.deploy_and_wait(FtmConfig::pbr());
  system.sim().network().link(system.replica(0).id(), system.replica(1).id())
      .bandwidth_bps = 400'000.0;
  system.sim().run_for(10 * sim::kSecond);
  ASSERT_FALSE(system.monitoring().trigger_log().empty());
  const auto& trigger = system.monitoring().trigger_log().front();
  EXPECT_EQ(trigger.kind, TriggerKind::kBandwidthDrop);
  EXPECT_NEAR(trigger.measured, 400'000.0, 1.0);
  EXPECT_FALSE(trigger.detail.empty());
}

TEST_F(ManagerFixture, HistoryRecordsCauses) {
  system.deploy_and_wait(FtmConfig::pbr());
  system.manager().notify_fault_model_change(FaultModel{true, true, false},
                                             "radiation environment");
  ASSERT_FALSE(system.manager().history().empty());
  EXPECT_NE(system.manager().history().back().cause.find("radiation"),
            std::string::npos);
}

}  // namespace
}  // namespace rcs::core
