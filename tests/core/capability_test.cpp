// Capability model vs Table 1: fault coverage, applicability requirements,
// resource classes, validity and viability.
#include "rcs/core/capability.hpp"

#include <gtest/gtest.h>

#include "rcs/app/apps.hpp"
#include "rcs/ftm/registration.hpp"

namespace rcs::core {
namespace {

using ftm::FtmConfig;

struct CapabilityFixture : ::testing::Test {
  CapabilityFixture() {
    ftm::register_components();
    app::register_components();
  }

  ftm::AppSpec kv = app::spec_for("app.kvstore");
  ftm::AppSpec sensor = app::spec_for("app.sensor");
  ftm::AppSpec transformer = app::spec_for("app.transformer");

  FtarState state_with(FaultModel ft, ftm::AppSpec app,
                       Resources r = Resources{}) {
    return FtarState{ft, std::move(app), r};
  }
};

// --- Table 1, fault-model rows ---------------------------------------------

TEST_F(CapabilityFixture, Table1FaultModelRow) {
  EXPECT_TRUE(capability_of(FtmConfig::pbr(), kv).coverage.crash);
  EXPECT_FALSE(capability_of(FtmConfig::pbr(), kv).coverage.transient_value);
  EXPECT_TRUE(capability_of(FtmConfig::lfr(), kv).coverage.crash);
  EXPECT_FALSE(capability_of(FtmConfig::lfr(), kv).coverage.permanent_value);

  const auto tr = capability_of(FtmConfig::tr(), kv);
  EXPECT_FALSE(tr.coverage.crash) << "single host cannot survive a crash";
  EXPECT_TRUE(tr.coverage.transient_value);
  EXPECT_FALSE(tr.coverage.permanent_value);

  const auto a_duplex = capability_of(FtmConfig::a_lfr(), kv);
  EXPECT_TRUE(a_duplex.coverage.crash);
  EXPECT_TRUE(a_duplex.coverage.transient_value);
  EXPECT_TRUE(a_duplex.coverage.permanent_value);
}

TEST_F(CapabilityFixture, CompositionAddsCoverage) {
  // PBR⊕TR = crash (from PBR) + transient (from TR), as in Fig. 2.
  const auto pbr_tr = capability_of(FtmConfig::pbr_tr(), kv);
  EXPECT_TRUE(pbr_tr.coverage.crash);
  EXPECT_TRUE(pbr_tr.coverage.transient_value);
  EXPECT_FALSE(pbr_tr.coverage.permanent_value);
}

// --- Table 1, application-characteristics rows ------------------------------

TEST_F(CapabilityFixture, Table1DeterminismRow) {
  EXPECT_FALSE(capability_of(FtmConfig::pbr(), kv).requires_determinism)
      << "PBR allows non-determinism: only the primary computes";
  EXPECT_TRUE(capability_of(FtmConfig::lfr(), kv).requires_determinism);
  EXPECT_TRUE(capability_of(FtmConfig::tr(), kv).requires_determinism);
  EXPECT_FALSE(capability_of(FtmConfig::a_pbr(), kv).requires_determinism)
      << "semantic assertions tolerate non-determinism";
}

TEST_F(CapabilityFixture, Table1StateAccessRow) {
  EXPECT_TRUE(capability_of(FtmConfig::pbr(), kv).needs_state_when_stateful);
  EXPECT_TRUE(capability_of(FtmConfig::tr(), kv).needs_state_when_stateful);
  EXPECT_FALSE(capability_of(FtmConfig::lfr(), kv).needs_state_when_stateful);
}

TEST_F(CapabilityFixture, Table1ResourceRow) {
  EXPECT_STREQ(capability_of(FtmConfig::pbr(), kv).bandwidth_class(), "high");
  EXPECT_STREQ(capability_of(FtmConfig::lfr(), kv).bandwidth_class(), "low");
  EXPECT_STREQ(capability_of(FtmConfig::tr(), kv).bandwidth_class(), "n/a");
  EXPECT_STREQ(capability_of(FtmConfig::a_lfr(), kv).bandwidth_class(), "low");

  EXPECT_STREQ(capability_of(FtmConfig::pbr(), kv).cpu_class(), "low");
  EXPECT_STREQ(capability_of(FtmConfig::lfr(), kv).cpu_class(), "high")
      << "total CPU across replicas doubles under active replication";
  EXPECT_STREQ(capability_of(FtmConfig::tr(), kv).cpu_class(), "high");
}

// --- Validity ---------------------------------------------------------------

TEST_F(CapabilityFixture, LfrInvalidForNondeterministicApp) {
  const auto report =
      validate(FtmConfig::lfr(), state_with({true, false, false}, sensor));
  EXPECT_FALSE(report.valid);
  EXPECT_NE(report.reasons.front().find("deterministic"), std::string::npos);
}

TEST_F(CapabilityFixture, PbrInvalidWithoutStateAccessForStatefulApp) {
  ftm::AppSpec no_access = kv;
  no_access.state_access = false;
  const auto report =
      validate(FtmConfig::pbr(), state_with({true, false, false}, no_access));
  EXPECT_FALSE(report.valid);
}

TEST_F(CapabilityFixture, PbrValidForStatelessAppWithoutStateAccess) {
  const auto report = validate(FtmConfig::pbr(),
                               state_with({true, false, false}, transformer));
  EXPECT_TRUE(report.valid);
}

TEST_F(CapabilityFixture, AssertFtmsNeedAnAssertion) {
  ftm::AppSpec no_assert = kv;
  no_assert.has_assertion = false;
  EXPECT_FALSE(
      validate(FtmConfig::a_pbr(), state_with({true, true, true}, no_assert))
          .valid);
  EXPECT_TRUE(
      validate(FtmConfig::a_pbr(), state_with({true, true, true}, kv)).valid);
}

TEST_F(CapabilityFixture, FaultCoverageGatesValidity) {
  const FtarState transient_world = state_with({true, true, false}, kv);
  EXPECT_FALSE(validate(FtmConfig::pbr(), transient_world).valid);
  EXPECT_TRUE(validate(FtmConfig::pbr_tr(), transient_world).valid);
  EXPECT_TRUE(validate(FtmConfig::a_pbr(), transient_world).valid);

  const FtarState permanent_world = state_with({true, true, true}, kv);
  EXPECT_FALSE(validate(FtmConfig::pbr_tr(), permanent_world).valid);
  EXPECT_TRUE(validate(FtmConfig::a_lfr(), permanent_world).valid);
}

TEST_F(CapabilityFixture, DevelopmentFaultsNeedDesignDiversity) {
  // §2's third fault class: only recovery blocks (a diversified alternate)
  // cover development faults; repetition and identical-replica re-execution
  // do not.
  EXPECT_TRUE(capability_of(FtmConfig::rb(), kv).coverage.development);
  EXPECT_TRUE(capability_of(FtmConfig::pbr_rb(), kv).coverage.development);
  EXPECT_FALSE(capability_of(FtmConfig::pbr_tr(), kv).coverage.development);
  EXPECT_FALSE(capability_of(FtmConfig::a_pbr(), kv).coverage.development);

  const FtarState dev_world = state_with({true, false, false, true}, kv);
  EXPECT_TRUE(validate(FtmConfig::pbr_rb(), dev_world).valid);
  EXPECT_FALSE(validate(FtmConfig::a_pbr(), dev_world).valid);
  EXPECT_FALSE(validate(FtmConfig::rb(), dev_world).valid)
      << "crash requirement excludes the single-host variant";

  // Without a diversified alternate, RB is inapplicable (A requirement).
  ftm::AppSpec no_alt = kv;
  no_alt.has_alternate = false;
  EXPECT_FALSE(
      validate(FtmConfig::pbr_rb(), state_with({true, false, false, true}, no_alt))
          .valid);
}

TEST_F(CapabilityFixture, ManagerSelectsRecoveryBlocksForDevelopmentFaults) {
  // (Selection logic itself is exercised in manager_test; here: PBR_RB is
  // the unique standard candidate for {crash, development}.)
  const FtarState dev_world = state_with({true, false, false, true}, kv);
  int valid_count = 0;
  std::string valid_name;
  for (const auto& config : FtmConfig::standard_set()) {
    if (validate(config, dev_world).valid) {
      ++valid_count;
      valid_name = config.name;
    }
  }
  EXPECT_EQ(valid_count, 1);
  EXPECT_EQ(valid_name, "PBR_RB");
}

TEST_F(CapabilityFixture, CrashRequirementExcludesSingleHostTr) {
  EXPECT_FALSE(validate(FtmConfig::tr(), state_with({true, true, false}, kv)).valid);
  EXPECT_TRUE(
      validate(FtmConfig::tr(), state_with({false, true, false}, kv)).valid);
}

// --- Viability (R dimension) -------------------------------------------------

TEST_F(CapabilityFixture, BandwidthCollapseMakesPbrNonViable) {
  FtarState state = state_with({true, false, false}, kv);
  EXPECT_TRUE(resource_viable(FtmConfig::pbr(), state).valid);
  state.resources.bandwidth_bps = 400'000.0;
  EXPECT_FALSE(resource_viable(FtmConfig::pbr(), state).valid)
      << "checkpoints no longer fit the link budget";
  EXPECT_TRUE(resource_viable(FtmConfig::lfr(), state).valid)
      << "notifications still fit";
}

TEST_F(CapabilityFixture, CpuCollapseMakesTrNonViable) {
  FtarState state = state_with({true, true, false}, kv);
  EXPECT_TRUE(resource_viable(FtmConfig::lfr_tr(), state).valid);
  state.resources.cpu_speed = 0.4;
  EXPECT_FALSE(resource_viable(FtmConfig::lfr_tr(), state).valid)
      << "double execution exceeds the CPU budget";
  EXPECT_TRUE(resource_viable(FtmConfig::lfr(), state).valid);
}

TEST_F(CapabilityFixture, CostRanksPbrCheaperOnFastLink) {
  const FtarState state = state_with({true, false, false}, kv);
  EXPECT_LT(resource_cost(FtmConfig::pbr(), state),
            resource_cost(FtmConfig::lfr(), state))
      << "with ample bandwidth, passive replication is the economical choice";
}

TEST_F(CapabilityFixture, CostRanksLfrCheaperOnSlowLink) {
  FtarState state = state_with({true, false, false}, kv);
  state.resources.bandwidth_bps = 400'000.0;
  EXPECT_LT(resource_cost(FtmConfig::lfr(), state),
            resource_cost(FtmConfig::pbr(), state));
}

TEST_F(CapabilityFixture, EnergyConstraintPenalizesComputationHeavyFtms) {
  FtarState state = state_with({true, true, false}, kv);
  const double unconstrained = resource_cost(FtmConfig::lfr_tr(), state);
  state.resources.energy_constrained = true;
  EXPECT_GT(resource_cost(FtmConfig::lfr_tr(), state), unconstrained);
}

TEST_F(CapabilityFixture, FaultModelHelpers) {
  const FaultModel crash_only{true, false, false};
  const FaultModel everything{true, true, true};
  EXPECT_TRUE(crash_only.covered_by(everything));
  EXPECT_FALSE(everything.covered_by(crash_only));
  EXPECT_EQ(crash_only.to_string(), "crash");
  EXPECT_EQ(everything.to_string(), "crash transient permanent");
  EXPECT_EQ((FaultModel{false, false, false}).to_string(), "(none)");
}

}  // namespace
}  // namespace rcs::core
