// End-to-end duplex protocol behaviour: normal operation, at-most-once,
// crash failover, state continuity, rejoin (§3.2.1 and §5.3).
#include <gtest/gtest.h>

#include "duplex_fixture.hpp"

namespace rcs::ftm::testing {
namespace {

using Fixture = DuplexFixture;

TEST_F(Fixture, PbrServesRequests) {
  deploy(FtmConfig::pbr());
  const Value reply = roundtrip(kv_put("k", Value(42)));
  ASSERT_FALSE(reply.has("error")) << reply.to_string();
  EXPECT_TRUE(reply.at("result").at("ok").as_bool());

  const Value got = roundtrip(kv_get("k"));
  EXPECT_EQ(got.at("result").at("value").as_int(), 42);
}

TEST_F(Fixture, LfrServesRequests) {
  deploy(FtmConfig::lfr());
  const Value reply = roundtrip(kv_incr("n", 5));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 5);
}

TEST_F(Fixture, EveryStandardFtmServesTheKvWorkload) {
  // Parameterized manually over the full set (TR included: single host).
  for (const auto& config : FtmConfig::standard_set()) {
    SCOPED_TRACE(config.name);
    sim::Simulation local_sim{99};
    sim::Host& a = local_sim.add_host("a");
    sim::Host& b = local_sim.add_host("b");
    sim::Host& c = local_sim.add_host("c");
    comp::HostLibrary la, lb;
    la.install_all(comp::ComponentRegistry::instance());
    lb.install_all(comp::ComponentRegistry::instance());
    FtmRuntime ra{a, la}, rb{b, lb};
    DeployParams params;
    params.config = config;
    params.role = Role::kPrimary;
    if (config.duplex) params.peers = {b.id().value()};
    params.master = a.id().value();
    params.app = app::spec_for(app::kKvStore);
    ra.deploy(params);
    if (config.duplex) {
      params.role = Role::kBackup;
      params.peers = {a.id().value()};
      rb.deploy(params);
    }
    Client cl{c, {a.id(), b.id()}};
    Value reply;
    cl.send(kv_incr("x"), [&](const Value& r) { reply = r; });
    local_sim.run_for(3 * sim::kSecond);
    ASSERT_TRUE(reply.is_map()) << "no reply under " << config.name;
    ASSERT_FALSE(reply.has("error")) << reply.to_string();
    EXPECT_EQ(reply.at("result").at("value").as_int(), 1);
  }
}

TEST_F(Fixture, RetransmissionIsServedFromReplyLog) {
  deploy(FtmConfig::pbr());
  (void)roundtrip(kv_incr("ctr"));
  // Manually retransmit the same request id straight to the primary.
  Value payload = Value::map();
  payload.set("client", static_cast<std::int64_t>(hc.id().value()))
      .set("id", 1)
      .set("request", kv_incr("ctr"));
  hc.send(h0.id(), msg::kRequest, payload);
  sim.run_for(sim::kSecond);
  // The increment must NOT have been applied twice.
  const Value got = roundtrip(kv_get("ctr"));
  EXPECT_EQ(got.at("result").at("value").as_int(), 1);
  EXPECT_GE(rt0.kernel().counters().duplicates_served, 1u);
}

TEST_F(Fixture, PbrPrimaryCrashFailsOverWithState) {
  deploy(FtmConfig::pbr());
  for (int i = 0; i < 3; ++i) (void)roundtrip(kv_incr("ctr"));

  inject.crash_at(h0.id(), sim.now() + 10 * sim::kMillisecond);
  sim.run_for(50 * sim::kMillisecond);
  EXPECT_FALSE(h0.alive());

  // The client retries and lands on the promoted backup; the checkpointed
  // state makes the counter continue from 3.
  const Value reply = roundtrip(kv_incr("ctr"), 10 * sim::kSecond);
  ASSERT_FALSE(reply.has("error")) << reply.to_string();
  EXPECT_EQ(reply.at("result").at("value").as_int(), 4);
  EXPECT_EQ(rt1.kernel().role(), Role::kAlone);
  EXPECT_EQ(rt1.kernel().counters().promotions, 1u);
}

TEST_F(Fixture, LfrLeaderCrashFailsOverWithState) {
  deploy(FtmConfig::lfr());
  for (int i = 0; i < 3; ++i) (void)roundtrip(kv_incr("ctr"));

  inject.crash_at(h0.id(), sim.now() + 10 * sim::kMillisecond);
  sim.run_for(50 * sim::kMillisecond);

  // The follower computed every request itself; its state is already current.
  const Value reply = roundtrip(kv_incr("ctr"), 10 * sim::kSecond);
  ASSERT_FALSE(reply.has("error"));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 4);
  EXPECT_EQ(rt1.kernel().role(), Role::kAlone);
}

TEST_F(Fixture, BackupCrashLeavesPrimaryServingAlone) {
  deploy(FtmConfig::pbr());
  (void)roundtrip(kv_incr("ctr"));
  inject.crash_at(h1.id(), sim.now() + 10 * sim::kMillisecond);
  sim.run_for(400 * sim::kMillisecond);  // let the FD suspect
  EXPECT_EQ(rt0.kernel().role(), Role::kAlone);

  const Value reply = roundtrip(kv_incr("ctr"), 5 * sim::kSecond);
  ASSERT_FALSE(reply.has("error"));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 2);
}

TEST_F(Fixture, AtMostOnceHoldsAcrossFailover) {
  deploy(FtmConfig::pbr());
  (void)roundtrip(kv_incr("ctr"));

  // Crash the primary, then retransmit the SAME id; the backup must serve
  // the logged reply (the log travelled in the checkpoint), not re-execute.
  inject.crash_at(h0.id(), sim.now() + 5 * sim::kMillisecond);
  sim.run_for(400 * sim::kMillisecond);
  ASSERT_EQ(rt1.kernel().role(), Role::kAlone);

  Value payload = Value::map();
  payload.set("client", static_cast<std::int64_t>(hc.id().value()))
      .set("id", 1)
      .set("request", kv_incr("ctr"));
  hc.send(h1.id(), msg::kRequest, payload);
  sim.run_for(sim::kSecond);
  EXPECT_GE(rt1.kernel().counters().duplicates_served, 1u);

  const Value got = roundtrip(kv_get("ctr"), 5 * sim::kSecond);
  EXPECT_EQ(got.at("result").at("value").as_int(), 1) << "no double increment";
}

TEST_F(Fixture, RestartedBackupRejoinsAndProtectsAgainstNextCrash) {
  deploy(FtmConfig::pbr());
  for (int i = 0; i < 2; ++i) (void)roundtrip(kv_incr("ctr"));

  // Backup dies; primary goes alone and keeps serving.
  inject.crash_at(h1.id(), sim.now() + 5 * sim::kMillisecond);
  sim.run_for(400 * sim::kMillisecond);
  ASSERT_EQ(rt0.kernel().role(), Role::kAlone);
  (void)roundtrip(kv_incr("ctr"), 5 * sim::kSecond);  // ctr = 3

  // Backup restarts, redeploys from stable storage, rejoins.
  h1.restart();
  auto persisted = FtmRuntime::load_persisted(h1);
  ASSERT_TRUE(persisted.has_value());
  persisted->role = Role::kBackup;
  rt1.deploy(*persisted);
  rt1.request_rejoin();
  sim.run_for(500 * sim::kMillisecond);
  EXPECT_EQ(rt0.kernel().role(), Role::kPrimary);
  EXPECT_EQ(rt1.kernel().role(), Role::kBackup);

  // Now the PRIMARY dies; the rejoined backup must carry the full state.
  inject.crash_at(h0.id(), sim.now() + 5 * sim::kMillisecond);
  sim.run_for(400 * sim::kMillisecond);
  const Value reply = roundtrip(kv_incr("ctr"), 10 * sim::kSecond);
  ASSERT_FALSE(reply.has("error"));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 4);
}

TEST_F(Fixture, PbrFullCheckpointsMoveBulkTraffic) {
  // Non-incremental mode: every request ships the whole application state.
  FtmConfig full = FtmConfig::pbr();
  full.delta_checkpoint = false;
  deploy(full);
  for (int i = 0; i < 5; ++i) (void)roundtrip(kv_incr("ctr"));
  EXPECT_EQ(rt0.kernel().counters().checkpoints_sent, 5u);
  EXPECT_EQ(rt0.kernel().counters().full_checkpoints_sent, 5u);
  EXPECT_EQ(rt1.kernel().counters().checkpoints_applied, 5u);
  // Checkpoints (state_size ~4KB each) dominate LFR-style notification bytes.
  EXPECT_GT(sim.network().traffic(h0.id()).bytes_sent, 5u * 4000u);
}

TEST_F(Fixture, DeltaCheckpointsSlashCheckpointTraffic) {
  // Default mode: only the dirty key set travels, so the same workload that
  // moves >20 KB of full checkpoints stays below one full state in total.
  deploy(FtmConfig::pbr());
  for (int i = 0; i < 5; ++i) (void)roundtrip(kv_incr("ctr"));
  EXPECT_EQ(rt0.kernel().counters().checkpoints_sent, 5u);
  EXPECT_EQ(rt0.kernel().counters().deltas_sent, 5u);
  EXPECT_EQ(rt1.kernel().counters().checkpoints_applied, 5u);
  EXPECT_EQ(rt1.kernel().counters().resyncs, 0u);
  EXPECT_LT(sim.network().traffic(h0.id()).bytes_sent, 4000u);
}

TEST_F(Fixture, LfrKeepsBandwidthLowButBothReplicasCompute) {
  deploy(FtmConfig::lfr());
  for (int i = 0; i < 5; ++i) (void)roundtrip(kv_incr("ctr"));
  EXPECT_EQ(rt0.kernel().counters().notifications, 5u);
  EXPECT_EQ(rt1.kernel().counters().forwarded, 5u);
  // Both replicas burned CPU (active replication).
  EXPECT_GT(h0.meter().cpu_used(), 0);
  EXPECT_GT(h1.meter().cpu_used(), 0);
  EXPECT_NEAR(static_cast<double>(h0.meter().cpu_used()),
              static_cast<double>(h1.meter().cpu_used()),
              static_cast<double>(h0.meter().cpu_used()) * 0.2);
}

TEST_F(Fixture, StablStorageRecordsActiveConfiguration) {
  deploy(FtmConfig::lfr_tr());
  const auto persisted = FtmRuntime::load_persisted(h0);
  ASSERT_TRUE(persisted.has_value());
  EXPECT_EQ(persisted->config, FtmConfig::lfr_tr());
  EXPECT_EQ(persisted->role, Role::kPrimary);
}

}  // namespace
}  // namespace rcs::ftm::testing
