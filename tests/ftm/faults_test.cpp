// Value-fault behaviour: which FTM masks which fault (the dynamics behind
// Table 1's fault-model rows), plus the runtime detection events that feed
// the monitoring engine.
#include <gtest/gtest.h>

#include "duplex_fixture.hpp"
#include "rcs/app/app_base.hpp"

namespace rcs::ftm::testing {
namespace {

using app::AppServerBase;
using Fixture = DuplexFixture;

/// Extract the application-level result and verify its checksum.
bool result_checksum_ok(const Value& reply) {
  return !reply.has("error") &&
         AppServerBase::checksum_ok(reply.at("result"));
}

TEST_F(Fixture, PlainPbrDeliversCorruptedResultUndetected) {
  // PBR's fault model is crash-only (Table 1): an injected transient value
  // fault slips through to the client — the motivation for adapting the FTM
  // when the fault model changes.
  deploy(FtmConfig::pbr());
  h0.faults().transient_pending = 1;
  const Value reply = roundtrip(kv_get("missing"));
  ASSERT_FALSE(reply.has("error"));
  EXPECT_FALSE(result_checksum_ok(reply)) << "corruption reached the client";
}

TEST_F(Fixture, PbrTrMasksTransientFault) {
  deploy(FtmConfig::pbr_tr());
  h0.faults().transient_pending = 1;
  const Value reply = roundtrip(kv_incr("ctr"));
  ASSERT_FALSE(reply.has("error"));
  EXPECT_TRUE(result_checksum_ok(reply));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 1);
  EXPECT_EQ(rt0.kernel().counters().tr_mismatches, 1u);
}

TEST_F(Fixture, LfrTrMasksTransientFault) {
  deploy(FtmConfig::lfr_tr());
  h0.faults().transient_pending = 1;
  const Value reply = roundtrip(kv_incr("ctr"));
  ASSERT_FALSE(reply.has("error"));
  EXPECT_TRUE(result_checksum_ok(reply));
  EXPECT_EQ(rt0.kernel().counters().tr_mismatches, 1u);
}

TEST_F(Fixture, TrSingleHostMasksTransientFault) {
  deploy(FtmConfig::tr());
  h0.faults().transient_pending = 1;
  Value reply;
  Client solo{sim.add_host("solo-client"), {h0.id()}};
  solo.send(kv_incr("ctr"), [&](const Value& r) { reply = r; });
  sim.run_for(3 * sim::kSecond);
  ASSERT_TRUE(reply.is_map());
  ASSERT_FALSE(reply.has("error"));
  EXPECT_TRUE(result_checksum_ok(reply));
}

TEST_F(Fixture, TrStateIsConsistentAfterVoting) {
  deploy(FtmConfig::pbr_tr());
  h0.faults().transient_pending = 1;
  (void)roundtrip(kv_incr("ctr"));
  // Repeated execution with state restore must leave exactly ONE increment.
  const Value got = roundtrip(kv_get("ctr"));
  EXPECT_EQ(got.at("result").at("value").as_int(), 1);
}

TEST_F(Fixture, APbrMasksTransientViaReexecutionOnBackup) {
  deploy(FtmConfig::a_pbr());
  h0.faults().transient_pending = 1;
  const Value reply = roundtrip(kv_incr("ctr"));
  ASSERT_FALSE(reply.has("error")) << reply.to_string();
  EXPECT_TRUE(result_checksum_ok(reply));
  EXPECT_EQ(reply.at("result").at("value").as_int(), 1);
  EXPECT_EQ(rt0.kernel().counters().assertion_failures, 1u);
}

TEST_F(Fixture, ALfrMasksTransientViaReexecutionOnFollower) {
  deploy(FtmConfig::a_lfr());
  h0.faults().transient_pending = 1;
  const Value reply = roundtrip(kv_incr("ctr"));
  ASSERT_FALSE(reply.has("error")) << reply.to_string();
  EXPECT_TRUE(result_checksum_ok(reply));
  EXPECT_EQ(rt0.kernel().counters().assertion_failures, 1u);
}

TEST_F(Fixture, APbrSurvivesPermanentFaultOnPrimary) {
  // Permanent value fault (hardware aging): every primary computation is
  // corrupted; A&PBR keeps answering correctly by re-executing on the backup.
  deploy(FtmConfig::a_pbr());
  h0.faults().permanent = true;
  for (int i = 1; i <= 3; ++i) {
    const Value reply = roundtrip(kv_incr("ctr"), 10 * sim::kSecond);
    ASSERT_FALSE(reply.has("error")) << reply.to_string();
    EXPECT_TRUE(result_checksum_ok(reply));
    EXPECT_EQ(reply.at("result").at("value").as_int(), i);
  }
  EXPECT_GE(rt0.kernel().counters().assertion_failures, 3u);
}

TEST_F(Fixture, ALfrSurvivesPermanentFaultOnLeader) {
  deploy(FtmConfig::a_lfr());
  h0.faults().permanent = true;
  for (int i = 1; i <= 3; ++i) {
    const Value reply = roundtrip(kv_incr("ctr"), 10 * sim::kSecond);
    ASSERT_FALSE(reply.has("error")) << reply.to_string();
    EXPECT_TRUE(result_checksum_ok(reply));
    EXPECT_EQ(reply.at("result").at("value").as_int(), i);
  }
}

TEST_F(Fixture, BothReplicasPermanentlyFaultyYieldsErrorReply) {
  deploy(FtmConfig::a_pbr());
  h0.faults().permanent = true;
  h1.faults().permanent = true;
  const Value reply = roundtrip(kv_incr("ctr"), 10 * sim::kSecond);
  EXPECT_TRUE(reply.has("error")) << reply.to_string();
}

TEST_F(Fixture, AssertionFailureWithoutPeerFailsSafely) {
  deploy(FtmConfig::a_pbr());
  // Kill the backup first, then inject: no re-execution target remains.
  inject.crash_at(h1.id(), sim.now() + 5 * sim::kMillisecond);
  sim.run_for(400 * sim::kMillisecond);
  ASSERT_EQ(rt0.kernel().role(), Role::kAlone);
  h0.faults().permanent = true;
  const Value reply = roundtrip(kv_incr("ctr"), 10 * sim::kSecond);
  EXPECT_TRUE(reply.has("error")) << "unsafe result must not be delivered";
}

TEST_F(Fixture, RecoveryBlocksMaskPlantedSoftwareFault) {
  // A development fault in the primary variant (§2's third fault class):
  // increments come out negated — wrong but correctly checksummed, so only
  // the semantic acceptance test can catch it; the diversified alternate
  // masks it (§3.2.1's recovery blocks).
  deploy(FtmConfig::pbr_rb());
  for (std::size_t i = 0; i < 2; ++i) {
    auto& rt = i == 0 ? rt0 : rt1;
    rt.composite().set_property("server", "primary_bug", Value(true));
  }
  for (int i = 1; i <= 3; ++i) {
    const Value reply = roundtrip(kv_incr("ctr"), 10 * sim::kSecond);
    ASSERT_FALSE(reply.has("error")) << reply.to_string();
    EXPECT_EQ(reply.at("result").at("value").as_int(), i);
  }
  // The acceptance test fired once per request.
  const Value stats = rt0.composite().invoke("protocol", "control", "stats", {});
  EXPECT_EQ(rt0.kernel().counters().replies, 3u);
}

TEST_F(Fixture, TrCannotMaskSoftwareFaults) {
  // The bug is deterministic: repetition reproduces it, both runs agree,
  // and the wrong (but checksummed) result is delivered — why development
  // faults need diversity, not redundancy.
  deploy(FtmConfig::pbr_tr());
  rt0.composite().set_property("server", "primary_bug", Value(true));
  const Value reply = roundtrip(kv_incr("ctr"), 10 * sim::kSecond);
  ASSERT_FALSE(reply.has("error"));
  EXPECT_LT(reply.at("result").at("value").as_int(), 0)
      << "TR delivered the buggy result";
}

TEST_F(Fixture, ADuplexCannotMaskCommonModeSoftwareFaults) {
  // Identical replicas share the bug: re-execution on the peer produces the
  // same wrong answer — the paper's point that A&Duplex handles software
  // faults only "when replicas are diversified".
  deploy(FtmConfig::a_pbr());
  for (std::size_t i = 0; i < 2; ++i) {
    auto& rt = i == 0 ? rt0 : rt1;
    rt.composite().set_property("server", "primary_bug", Value(true));
  }
  const Value reply = roundtrip(kv_incr("ctr"), 10 * sim::kSecond);
  EXPECT_TRUE(reply.has("error")) << reply.to_string();
}

TEST_F(Fixture, RecoveryBlocksAlsoMaskTransients) {
  deploy(FtmConfig::rb());
  h0.faults().transient_pending = 1;
  Value reply;
  Client solo{sim.add_host("rb-client"), {h0.id()}};
  solo.send(kv_incr("ctr"), [&](const Value& r) { reply = r; });
  sim.run_for(5 * sim::kSecond);
  ASSERT_TRUE(reply.is_map());
  ASSERT_FALSE(reply.has("error")) << reply.to_string();
  EXPECT_EQ(reply.at("result").at("value").as_int(), 1);
}

TEST_F(Fixture, RecoveryBlocksStateConsistentAfterFallback) {
  deploy(FtmConfig::pbr_rb());
  rt0.composite().set_property("server", "primary_bug", Value(true));
  rt1.composite().set_property("server", "primary_bug", Value(true));
  for (int i = 0; i < 3; ++i) (void)roundtrip(kv_incr("ctr"), 10 * sim::kSecond);
  // Primary rejected + alternate executed = exactly one increment each.
  const Value got = roundtrip(kv_get("ctr"), 10 * sim::kSecond);
  EXPECT_EQ(got.at("result").at("value").as_int(), 3);
}

TEST_F(Fixture, NondeterministicAppUnderLfrReportsDivergence) {
  // Deploying LFR under a non-deterministic application violates Table 1's
  // determinism requirement; the follower's digest comparison surfaces it.
  deploy(FtmConfig::lfr(), app::kSensor);
  for (int i = 0; i < 5; ++i) {
    (void)roundtrip(Value::map().set("op", "read").set("target", 40.0));
  }
  EXPECT_GE(rt1.kernel().counters().divergences, 1u);
}

TEST_F(Fixture, NondeterministicAppUnderPbrIsFine) {
  deploy(FtmConfig::pbr(), app::kSensor);
  for (int i = 0; i < 5; ++i) {
    const Value reply =
        roundtrip(Value::map().set("op", "read").set("target", 40.0));
    ASSERT_FALSE(reply.has("error"));
  }
  EXPECT_EQ(rt1.kernel().counters().divergences, 0u);
}

TEST_F(Fixture, NondeterministicAppUnderTrFailsRequests) {
  // TR re-executes and compares: a non-deterministic app can never produce
  // a majority — Table 1's determinism requirement observed at runtime.
  deploy(FtmConfig::pbr_tr(), app::kSensor);
  const Value reply =
      roundtrip(Value::map().set("op", "read").set("target", 40.0),
                10 * sim::kSecond);
  EXPECT_TRUE(reply.has("error"));
}

TEST_F(Fixture, ASensorToleratesNondeterminismViaSemanticAssertion) {
  // A&Duplex's assertion is a semantic range property, not an equality
  // check, so it accepts non-deterministic results (Table 1: A&Duplex
  // supports non-deterministic applications).
  deploy(FtmConfig::a_pbr(), app::kSensor);
  const Value reply =
      roundtrip(Value::map().set("op", "read").set("target", 40.0));
  ASSERT_FALSE(reply.has("error"));
  const double reading = reply.at("result").at("reading").as_double();
  EXPECT_GE(reading, 0.0);
  EXPECT_LE(reading, 100.0);
}

TEST_F(Fixture, DeltaFailoverServesLastAckedRequestExactlyOnce) {
  // A run of incremental checkpoints carries both the dirty state and the
  // reply-log tail to the backup. Killing the primary mid-stream must leave
  // the promoted backup able to serve the last acknowledged request from its
  // imported log — exactly once, never by re-execution.
  deploy(FtmConfig::pbr());
  for (int i = 0; i < 5; ++i) (void)roundtrip(kv_incr("ctr"));
  EXPECT_EQ(rt0.kernel().counters().deltas_sent, 5u);
  EXPECT_EQ(rt1.kernel().counters().checkpoints_applied, 5u);

  inject.crash_at(h0.id(), sim.now() + 5 * sim::kMillisecond);
  sim.run_for(400 * sim::kMillisecond);
  ASSERT_EQ(rt1.kernel().role(), Role::kAlone);

  // Retransmit the last acknowledged request id straight to the survivor.
  Value payload = Value::map();
  payload.set("client", static_cast<std::int64_t>(hc.id().value()))
      .set("id", 5)
      .set("request", kv_incr("ctr"));
  hc.send(h1.id(), msg::kRequest, payload);
  sim.run_for(sim::kSecond);
  EXPECT_GE(rt1.kernel().counters().duplicates_served, 1u);

  const Value got = roundtrip(kv_get("ctr"), 5 * sim::kSecond);
  EXPECT_EQ(got.at("result").at("value").as_int(), 5) << "no double increment";
  EXPECT_EQ(rt1.kernel().counters().resyncs, 0u) << "stream had no gap";
}

TEST_F(Fixture, BackupMissingDeltasResyncsViaJoinPath) {
  deploy(FtmConfig::pbr());
  for (int i = 0; i < 3; ++i) (void)roundtrip(kv_incr("ctr"));
  EXPECT_EQ(rt1.kernel().counters().checkpoints_applied, 3u);

  // Silently restart the backup — fast enough that the failure detector
  // never suspects it. Its replica state and delta-stream position are gone,
  // but the primary keeps streaming deltas as if nothing happened.
  inject.crash_at(h1.id(), sim.now() + 2 * sim::kMillisecond);
  sim.run_for(10 * sim::kMillisecond);
  ASSERT_FALSE(h1.alive());
  h1.restart();
  DeployParams backup;
  backup.config = FtmConfig::pbr();
  backup.role = Role::kBackup;
  backup.peers = {h0.id().value()};
  backup.master = h0.id().value();
  backup.app = app::spec_for(app::kKvStore);
  rt1.deploy(backup);
  ASSERT_EQ(rt0.kernel().role(), Role::kPrimary);

  // The next delta arrives with a base the genesis replica never applied:
  // the backup must detect the gap, pull a full join snapshot, and only then
  // acknowledge — the client request rides out the resync.
  const Value reply = roundtrip(kv_incr("ctr"), 10 * sim::kSecond);
  ASSERT_FALSE(reply.has("error")) << reply.to_string();
  EXPECT_EQ(reply.at("result").at("value").as_int(), 4);
  EXPECT_GE(rt1.kernel().counters().resyncs, 1u) << "gap went undetected";

  // The resynced backup is a fully valid failover target.
  inject.crash_at(h0.id(), sim.now() + 5 * sim::kMillisecond);
  sim.run_for(400 * sim::kMillisecond);
  const Value after = roundtrip(kv_incr("ctr"), 10 * sim::kSecond);
  ASSERT_FALSE(after.has("error")) << after.to_string();
  EXPECT_EQ(after.at("result").at("value").as_int(), 5);
}

TEST_F(Fixture, FaultListenerFiresForMonitoring) {
  deploy(FtmConfig::pbr_tr());
  std::vector<std::string> events;
  rt0.kernel().set_fault_listener(
      [&](const std::string& kind) { events.push_back(kind); });
  h0.faults().transient_pending = 1;
  (void)roundtrip(kv_incr("ctr"));
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0], "tr_mismatch");
}

TEST(DeployFailure, FailedDeploymentScriptLeavesRuntimeUndeployed) {
  // Regression: deploy() built the composite before running the deployment
  // script, so a script failure (a brick type missing from the host library)
  // rolled the transaction back but left the empty composite behind —
  // deployed() reported true and the next kernel() probe (the node agent's
  // 500 ms stats timer) threw out of a timer action and aborted the process.
  register_components();
  app::register_components();
  sim::Simulation sim{7};
  sim::Host& h = sim.add_host("replica0");
  comp::HostLibrary bare;  // nothing installed: every deploy must roll back
  FtmRuntime rt{h, bare};
  DeployParams params;
  params.config = FtmConfig::tr();
  params.role = Role::kPrimary;
  params.master = static_cast<std::int64_t>(h.id().value());
  params.app = app::spec_for(app::kKvStore);
  EXPECT_THROW(rt.deploy(params), Error);
  EXPECT_FALSE(rt.deployed()) << "a rolled-back deploy must leave no FTM";

  // And the runtime stays usable: install the bricks and deploy for real.
  bare.install_all(comp::ComponentRegistry::instance());
  EXPECT_NO_THROW(rt.deploy(params));
  EXPECT_TRUE(rt.deployed());
}

}  // namespace
}  // namespace rcs::ftm::testing
