#include "rcs/ftm/config.hpp"

#include "rcs/ftm/interfaces.hpp"

#include <gtest/gtest.h>

#include <set>

#include "rcs/common/error.hpp"

namespace rcs::ftm {
namespace {

TEST(FtmConfig, StandardSetHasNineDistinctNames) {
  std::set<std::string> names;
  for (const auto& config : FtmConfig::standard_set()) names.insert(config.name);
  EXPECT_EQ(names.size(), 9u);
  EXPECT_EQ(FtmConfig::table3_set().size(), 6u)
      << "the paper's Table 3 matrix stays the original six";
}

TEST(FtmConfig, RecoveryBlocksConfigs) {
  EXPECT_EQ(FtmConfig::rb().proceed, brick::kProceedRb);
  EXPECT_FALSE(FtmConfig::rb().duplex);
  EXPECT_EQ(FtmConfig::pbr_rb().sync_after, brick::kSyncAfterPbr);
  EXPECT_TRUE(FtmConfig::pbr_rb().duplex);
  // PBR⊕RB is a one-brick composition away from PBR (like PBR⊕TR).
  EXPECT_EQ(FtmConfig::pbr().diff_size(FtmConfig::pbr_rb()), 1);
}

TEST(FtmConfig, Table2BrickAssignments) {
  EXPECT_EQ(FtmConfig::pbr().sync_before, brick::kSyncBeforeNoop);
  EXPECT_EQ(FtmConfig::pbr().sync_after, brick::kSyncAfterPbr);
  EXPECT_EQ(FtmConfig::lfr().sync_before, brick::kSyncBeforeLfr);
  EXPECT_EQ(FtmConfig::lfr().sync_after, brick::kSyncAfterLfr);
  EXPECT_EQ(FtmConfig::pbr_tr().proceed, brick::kProceedTr);
  EXPECT_EQ(FtmConfig::lfr_tr().proceed, brick::kProceedTr);
  EXPECT_EQ(FtmConfig::a_pbr().sync_after, brick::kSyncAfterPbrAssert);
  EXPECT_EQ(FtmConfig::a_lfr().sync_after, brick::kSyncAfterLfrAssert);
  EXPECT_FALSE(FtmConfig::tr().duplex);
}

TEST(FtmConfig, CompositionSharesDuplexBricks) {
  // PBR⊕TR keeps PBR's syncBefore/syncAfter: composition only changes proceed.
  EXPECT_EQ(FtmConfig::pbr_tr().sync_before, FtmConfig::pbr().sync_before);
  EXPECT_EQ(FtmConfig::pbr_tr().sync_after, FtmConfig::pbr().sync_after);
  EXPECT_EQ(FtmConfig::pbr().diff_size(FtmConfig::pbr_tr()), 1);
}

TEST(FtmConfig, DiffSizesMatchFigure9Scenarios) {
  // The three transitions of Figure 9 replace 1, 2 and 3 components.
  EXPECT_EQ(FtmConfig::lfr().diff_size(FtmConfig::lfr_tr()), 1);
  EXPECT_EQ(FtmConfig::pbr().diff_size(FtmConfig::lfr()), 2);
  EXPECT_EQ(FtmConfig::pbr().diff_size(FtmConfig::lfr_tr()), 3);
}

TEST(FtmConfig, DiffIsSymmetricAndZeroOnSelf) {
  for (const auto& a : FtmConfig::table3_set()) {
    EXPECT_EQ(a.diff_size(a), 0);
    for (const auto& b : FtmConfig::table3_set()) {
      EXPECT_EQ(a.diff_size(b), b.diff_size(a));
    }
  }
}

TEST(FtmConfig, EveryTable3PairDiffersInAtLeastOneSlot) {
  const auto& set = FtmConfig::table3_set();
  for (std::size_t i = 0; i < set.size(); ++i) {
    for (std::size_t j = 0; j < set.size(); ++j) {
      if (i == j) continue;
      EXPECT_GE(set[i].diff_size(set[j]), 1)
          << set[i].name << " vs " << set[j].name;
      EXPECT_LE(set[i].diff_size(set[j]), 3);
    }
  }
}

TEST(FtmConfig, ValueRoundTrip) {
  const FtmConfig& original = FtmConfig::a_lfr();
  const FtmConfig decoded = FtmConfig::from_value(original.to_value());
  EXPECT_EQ(decoded, original);
}

TEST(FtmConfig, ByNameLookupAndFailure) {
  EXPECT_EQ(FtmConfig::by_name("PBR_TR"), FtmConfig::pbr_tr());
  EXPECT_THROW((void)FtmConfig::by_name("NVP"), FtmError);
}

TEST(FtmConfig, RoleRoundTrip) {
  EXPECT_EQ(role_from_string("primary"), Role::kPrimary);
  EXPECT_EQ(role_from_string("backup"), Role::kBackup);
  EXPECT_EQ(role_from_string("alone"), Role::kAlone);
  EXPECT_STREQ(to_string(Role::kAlone), "alone");
  EXPECT_THROW((void)role_from_string("king"), FtmError);
}

}  // namespace
}  // namespace rcs::ftm
