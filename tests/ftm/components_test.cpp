// Unit tests for the kernel components (reply log; failure-detector timing).
#include <gtest/gtest.h>

#include "duplex_fixture.hpp"
#include "rcs/ftm/reply_log.hpp"

namespace rcs::ftm::testing {
namespace {

struct ReplyLogFixture : ::testing::Test {
  ReplyLogFixture() {
    register_components();
    root.add(kernel::kReplyLog, "log");
    root.start("log");
  }

  Value lookup(const std::string& key) {
    return root.invoke("log", "log", "lookup", Value::map().set("key", key));
  }
  void record(const std::string& key, Value reply) {
    root.invoke("log", "log", "record",
                Value::map().set("key", key).set("reply", std::move(reply)));
  }
  std::int64_t size() { return root.invoke("log", "log", "size", {}).as_int(); }

  comp::Composite root{"test"};
};

TEST_F(ReplyLogFixture, LookupMissReportsNotFound) {
  EXPECT_FALSE(lookup("c1:1").at("found").as_bool());
}

TEST_F(ReplyLogFixture, RecordThenLookupHit) {
  record("c1:1", Value::map().set("result", 42));
  const Value hit = lookup("c1:1");
  ASSERT_TRUE(hit.at("found").as_bool());
  EXPECT_EQ(hit.at("reply").at("result").as_int(), 42);
}

TEST_F(ReplyLogFixture, RecordOverwritesSameKeyWithoutGrowth) {
  record("k", Value::map().set("result", 1));
  record("k", Value::map().set("result", 2));
  EXPECT_EQ(size(), 1);
  EXPECT_EQ(lookup("k").at("reply").at("result").as_int(), 2);
}

TEST_F(ReplyLogFixture, ExportImportRoundTrip) {
  record("a", Value::map().set("result", 1));
  record("b", Value::map().set("result", 2));
  const Value snapshot = root.invoke("log", "log", "export", {});

  comp::Composite other{"other"};
  other.add(kernel::kReplyLog, "log");
  other.start("log");
  other.invoke("log", "log", "import", snapshot);
  EXPECT_EQ(other.invoke("log", "log", "size", {}).as_int(), 2);
  EXPECT_TRUE(other.invoke("log", "log", "lookup",
                           Value::map().set("key", "b"))
                  .at("found")
                  .as_bool());
}

TEST_F(ReplyLogFixture, CapacityEvictsOldestFirst) {
  root.set_property("log", "capacity", Value(3));
  for (int i = 0; i < 5; ++i) {
    record(strf("k", i), Value::map().set("result", i));
  }
  EXPECT_EQ(size(), 3);
  EXPECT_FALSE(lookup("k0").at("found").as_bool());
  EXPECT_FALSE(lookup("k1").at("found").as_bool());
  EXPECT_TRUE(lookup("k4").at("found").as_bool());
}

TEST_F(ReplyLogFixture, ClearEmptiesLog) {
  record("a", Value::map());
  root.invoke("log", "log", "clear", {});
  EXPECT_EQ(size(), 0);
}

TEST_F(ReplyLogFixture, ImportRejectsInconsistentSnapshot) {
  Value bad = Value::map();
  bad.set("entries", Value::map());
  bad.set("order", Value(ValueList{Value("ghost")}));
  EXPECT_THROW(root.invoke("log", "log", "import", bad), FtmError);
}

TEST_F(ReplyLogFixture, UnknownOpThrows) {
  EXPECT_THROW(root.invoke("log", "log", "explode", {}), FtmError);
}

// --- Failure detector timing ----------------------------------------------

using FdFixture = DuplexFixture;

TEST_F(FdFixture, NoSuspicionWhileBothAlive) {
  deploy(FtmConfig::pbr());
  sim.run_for(2 * sim::kSecond);
  EXPECT_EQ(rt0.kernel().role(), Role::kPrimary);
  EXPECT_EQ(rt1.kernel().role(), Role::kBackup);
}

TEST_F(FdFixture, SuspicionLatencyIsBoundedByTimeoutPlusInterval) {
  deploy(FtmConfig::pbr());
  sim.run_for(sim::kSecond);
  const sim::Time crash_time = sim.now() + 10 * sim::kMillisecond;
  inject.crash_at(h1.id(), crash_time);
  // Default: 200ms timeout + 50ms check interval (+1 beat of slack).
  sim.run_for(10 * sim::kMillisecond + 300 * sim::kMillisecond);
  EXPECT_EQ(rt0.kernel().role(), Role::kAlone);
}

TEST_F(FdFixture, PartitionCausesMutualSuspicion) {
  deploy(FtmConfig::pbr());
  sim.run_for(500 * sim::kMillisecond);
  sim.network().set_partitioned(h0.id(), h1.id(), true);
  sim.run_for(sim::kSecond);
  // Both sides lose heartbeats: classic split-brain exposure of duplex
  // protocols under partition (documented limitation; clients keep talking
  // to the original primary in our model).
  EXPECT_EQ(rt0.kernel().role(), Role::kAlone);
  EXPECT_EQ(rt1.kernel().role(), Role::kAlone);
}

TEST_F(FdFixture, HeartbeatRecoveryReportsPeerAgain) {
  deploy(FtmConfig::pbr());
  sim.run_for(500 * sim::kMillisecond);
  sim.network().set_partitioned(h0.id(), h1.id(), true);
  sim.run_for(sim::kSecond);
  sim.network().set_partitioned(h0.id(), h1.id(), false);
  sim.run_for(500 * sim::kMillisecond);
  const Value alive = rt0.composite().invoke("detector", "fd", "peer_alive", {});
  EXPECT_TRUE(alive.as_bool());
}

}  // namespace
}  // namespace rcs::ftm::testing
