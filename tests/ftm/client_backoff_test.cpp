// Client retransmission backoff: a fixed timeout shorter than the true
// round-trip keeps retransmitting requests whose reply is already in flight;
// capped exponential backoff stops that redundant traffic while still
// riding out real message loss (a 30% drop-rate link here).
#include <gtest/gtest.h>

#include "rcs/ftm/client.hpp"
#include "rcs/ftm/interfaces.hpp"
#include "rcs/sim/simulation.hpp"

namespace rcs::ftm::testing {
namespace {

/// Echo server: answers every request (including retransmissions) with a
/// well-formed reply — the network is the only source of loss.
void install_echo_server(sim::Host& server) {
  server.register_handler(msg::kRequest, [&server](const sim::Message& m) {
    Value reply = Value::map();
    reply.set("id", m.payload->at("id"))
        .set("result", Value::map().set("echo", m.payload->at("request")));
    server.send(HostId{static_cast<std::uint32_t>(
                    m.payload->at("client").as_int())},
                msg::kReply, std::move(reply));
  });
}

/// Drive `count` sequential requests; returns total retransmissions.
std::uint64_t run_workload(Client& client, sim::Simulation& sim, int count) {
  for (int i = 0; i < count; ++i) {
    bool done = false;
    client.send(Value::map().set("n", i), [&](const Value&) { done = true; });
    const sim::Time deadline = sim.now() + 60 * sim::kSecond;
    while (!done && sim.now() < deadline) {
      if (sim.loop().empty()) break;
      sim.loop().step();
    }
    EXPECT_TRUE(done) << "request " << i << " never completed";
  }
  return client.stats().retries;
}

Client::Options lossy_options(double backoff_factor) {
  Client::Options options;
  // Timeout deliberately well below the 2 x 300 ms round trip: the fixed
  // policy fires several times while the reply is still in flight, while
  // backoff stretches past the RTT after the first retry.
  options.timeout = 150 * sim::kMillisecond;
  options.max_attempts = 20;
  options.backoff_factor = backoff_factor;
  options.backoff_max = 2 * sim::kSecond;
  options.backoff_jitter = 0.1;
  return options;
}

TEST(ClientBackoff, FewerRedundantRetransmitsUnderDropRate) {
  constexpr int kRequests = 40;
  const auto run = [](double backoff_factor) {
    sim::Simulation sim(77);
    sim::Host& server = sim.add_host("server");
    sim::Host& client_host = sim.add_host("client");
    auto& link = sim.network().link(server.id(), client_host.id());
    link.latency = 300 * sim::kMillisecond;
    link.drop_rate = 0.3;
    install_echo_server(server);
    Client client{client_host, {server.id()}, lossy_options(backoff_factor)};
    const auto retries = run_workload(client, sim, kRequests);
    EXPECT_EQ(client.stats().ok, static_cast<std::uint64_t>(kRequests));
    EXPECT_EQ(client.stats().gave_up, 0u);
    return retries;
  };

  const std::uint64_t fixed = run(1.0);      // legacy fixed timeout
  const std::uint64_t backoff = run(2.0);    // capped exponential backoff
  EXPECT_GT(fixed, static_cast<std::uint64_t>(kRequests))
      << "fixed timeout below the RTT must produce redundant retransmits";
  EXPECT_LT(backoff, fixed)
      << "backoff must retransmit less under the same loss";
  EXPECT_LT(static_cast<double>(backoff), 0.75 * static_cast<double>(fixed))
      << "expected a substantial reduction";
}

TEST(ClientBackoff, DelayGrowsExponentiallyAndCaps) {
  sim::Simulation sim(1);
  sim::Host& server = sim.add_host("server");
  sim::Host& client_host = sim.add_host("client");
  Client::Options options;
  options.timeout = 100 * sim::kMillisecond;
  options.backoff_factor = 2.0;
  options.backoff_max = 900 * sim::kMillisecond;
  Client client{client_host, {server.id()}, options};
  EXPECT_EQ(client.backoff_delay(1), 100 * sim::kMillisecond);
  EXPECT_EQ(client.backoff_delay(2), 200 * sim::kMillisecond);
  EXPECT_EQ(client.backoff_delay(3), 400 * sim::kMillisecond);
  EXPECT_EQ(client.backoff_delay(4), 800 * sim::kMillisecond);
  EXPECT_EQ(client.backoff_delay(5), 900 * sim::kMillisecond) << "capped";
  EXPECT_EQ(client.backoff_delay(12), 900 * sim::kMillisecond);
}

TEST(ClientBackoff, FactorOneRecoversFixedTimeout) {
  sim::Simulation sim(1);
  sim::Host& server = sim.add_host("server");
  sim::Host& client_host = sim.add_host("client");
  Client::Options options;
  options.timeout = 250 * sim::kMillisecond;
  options.backoff_factor = 1.0;
  Client client{client_host, {server.id()}, options};
  for (int attempt = 1; attempt <= 8; ++attempt) {
    EXPECT_EQ(client.backoff_delay(attempt), 250 * sim::kMillisecond);
  }
}

TEST(ClientBackoff, ObserverSeesSendTransmitComplete) {
  sim::Simulation sim(5);
  sim::Host& server = sim.add_host("server");
  sim::Host& client_host = sim.add_host("client");
  install_echo_server(server);
  Client client{client_host, {server.id()}};

  std::vector<std::string> events;
  Client::Observer observer;
  observer.on_send = [&](std::uint64_t id, const Value&) {
    events.push_back("send:" + std::to_string(id));
  };
  observer.on_transmit = [&](std::uint64_t id, int attempt, HostId) {
    events.push_back("tx:" + std::to_string(id) + "/" +
                     std::to_string(attempt));
  };
  observer.on_complete = [&](std::uint64_t id, const Value& reply) {
    events.push_back((reply.has("error") ? "err:" : "ok:") +
                     std::to_string(id));
  };
  client.set_observer(std::move(observer));

  client.send(Value::map().set("n", 1));
  sim.run_for(2 * sim::kSecond);
  EXPECT_EQ(events,
            (std::vector<std::string>{"send:1", "tx:1/1", "ok:1"}));
}

}  // namespace
}  // namespace rcs::ftm::testing
