// Client retransmission/failover behaviour and the quiescence gate used by
// on-line transitions (§5.3 "consistency of request processing").
#include <gtest/gtest.h>

#include "duplex_fixture.hpp"

namespace rcs::ftm::testing {
namespace {

using Fixture = DuplexFixture;

TEST_F(Fixture, ClientCollectsLatencyStats) {
  deploy(FtmConfig::pbr());
  for (int i = 0; i < 4; ++i) (void)roundtrip(kv_incr("n"));
  EXPECT_EQ(client.stats().sent, 4u);
  EXPECT_EQ(client.stats().ok, 4u);
  EXPECT_EQ(client.stats().retries, 0u);
  ASSERT_EQ(client.stats().latency_count(), 4u);
  EXPECT_GT(client.stats().mean_latency_ms(), 0.0);
}

TEST_F(Fixture, ClientRetriesThroughCrash) {
  deploy(FtmConfig::pbr());
  inject.crash_at(h0.id(), sim.now() + 1 * sim::kMillisecond);
  const Value reply = roundtrip(kv_incr("n"), 15 * sim::kSecond);
  ASSERT_FALSE(reply.has("error"));
  EXPECT_GE(client.stats().retries, 1u);
  EXPECT_EQ(client.stats().ok, 1u);
}

TEST_F(Fixture, ClientGivesUpWhenEverythingIsDown) {
  deploy(FtmConfig::pbr());
  h0.crash();
  h1.crash();
  Value reply;
  client.send(kv_incr("n"), [&](const Value& r) { reply = r; });
  sim.run_for(30 * sim::kSecond);
  ASSERT_TRUE(reply.is_map());
  EXPECT_EQ(reply.at("error").as_string(), "timeout");
  EXPECT_EQ(client.stats().gave_up, 1u);
}

TEST_F(Fixture, QuiesceFiresImmediatelyWhenIdle) {
  deploy(FtmConfig::pbr());
  bool drained = false;
  rt0.quiesce([&] { drained = true; });
  EXPECT_TRUE(drained);
  rt0.resume();
}

TEST_F(Fixture, QuiesceWaitsForInFlightRequestThenBuffers) {
  deploy(FtmConfig::pbr());

  // Launch a request and quiesce while it is still being processed (compute
  // takes 5ms of virtual time).
  Value first_reply;
  client.send(kv_incr("n"), [&](const Value& r) { first_reply = r; });
  sim.run_for(3 * sim::kMillisecond);  // request reached the primary
  ASSERT_GE(rt0.kernel().in_flight(), 1u);

  bool drained = false;
  rt0.quiesce([&] { drained = true; });
  EXPECT_FALSE(drained) << "must wait for the in-flight request";

  sim.run_for(sim::kSecond);
  EXPECT_TRUE(drained) << "in-flight request completes the drain";
  ASSERT_TRUE(first_reply.is_map());
  EXPECT_FALSE(first_reply.has("error"));

  // New requests during the blocked window are buffered, not lost.
  Value second_reply;
  client.send(kv_incr("n"), [&](const Value& r) { second_reply = r; });
  sim.run_for(100 * sim::kMillisecond);
  EXPECT_TRUE(second_reply.is_null());
  EXPECT_GE(rt0.kernel().buffered(), 1u);

  rt0.resume();
  sim.run_for(sim::kSecond);
  ASSERT_TRUE(second_reply.is_map());
  EXPECT_EQ(second_reply.at("result").at("value").as_int(), 2);
}

TEST_F(Fixture, NoRequestLossAcrossQuiesceResumeBurst) {
  deploy(FtmConfig::lfr());
  int replies = 0;
  for (int i = 0; i < 10; ++i) {
    client.send(kv_incr("n"), [&](const Value& r) {
      ASSERT_FALSE(r.has("error"));
      ++replies;
    });
  }
  sim.run_for(3 * sim::kMillisecond);
  rt0.quiesce([] {});
  sim.run_for(200 * sim::kMillisecond);
  rt0.resume();
  sim.run_for(10 * sim::kSecond);
  EXPECT_EQ(replies, 10);
  // The counter saw every increment exactly once.
  const Value got = roundtrip(kv_get("n"));
  EXPECT_EQ(got.at("result").at("value").as_int(), 10);
}

TEST_F(Fixture, BufferedRequestsServedInOrder)  {
  deploy(FtmConfig::pbr());
  rt0.quiesce([] {});
  std::vector<std::int64_t> values;
  for (int i = 0; i < 5; ++i) {
    client.send(kv_incr("n"), [&](const Value& r) {
      ASSERT_FALSE(r.has("error"));
      values.push_back(r.at("result").at("value").as_int());
    });
  }
  sim.run_for(100 * sim::kMillisecond);
  EXPECT_TRUE(values.empty());
  rt0.resume();
  sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(values, (std::vector<std::int64_t>{1, 2, 3, 4, 5}));
}

}  // namespace
}  // namespace rcs::ftm::testing
