// Shared fixture: a two-replica FTM deployment plus a client, on the
// simulated network — the paper's evaluation testbed in miniature.
#pragma once

#include <gtest/gtest.h>

#include "rcs/app/apps.hpp"
#include "rcs/common/logging.hpp"
#include "rcs/ftm/client.hpp"
#include "rcs/ftm/registration.hpp"
#include "rcs/ftm/runtime.hpp"
#include "rcs/sim/fault_injector.hpp"
#include "rcs/sim/simulation.hpp"

namespace rcs::ftm::testing {

class DuplexFixture : public ::testing::Test {
 protected:
  DuplexFixture() {
    register_components();
    app::register_components();
    lib0.install_all(comp::ComponentRegistry::instance());
    lib1.install_all(comp::ComponentRegistry::instance());
  }

  /// Deploy `config` over the two replicas (or one, for single-host FTMs).
  void deploy(const FtmConfig& config,
              const std::string& app_type = app::kKvStore) {
    const AppSpec spec = app::spec_for(app_type);
    DeployParams primary;
    primary.config = config;
    primary.role = Role::kPrimary;
    if (config.duplex) primary.peers = {h1.id().value()};
    primary.master = h0.id().value();
    primary.app = spec;
    rt0.deploy(primary);
    if (config.duplex) {
      DeployParams backup = primary;
      backup.role = Role::kBackup;
      backup.peers = {h0.id().value()};
      rt1.deploy(backup);
    }
  }

  // --- KV request helpers --------------------------------------------------
  static Value kv_put(const std::string& key, Value value) {
    return Value::map().set("op", "put").set("key", key).set("value",
                                                             std::move(value));
  }
  static Value kv_get(const std::string& key) {
    return Value::map().set("op", "get").set("key", key);
  }
  static Value kv_incr(const std::string& key, std::int64_t by = 1) {
    return Value::map().set("op", "incr").set("key", key).set("by", by);
  }

  /// Send one request and run the simulation until its reply arrives (or
  /// `budget` virtual time passes). Returns the reply payload.
  Value roundtrip(Value request, sim::Duration budget = 5 * sim::kSecond) {
    Value reply;
    bool got = false;
    client.send(std::move(request), [&](const Value& r) {
      reply = r;
      got = true;
    });
    const sim::Time deadline = sim.now() + budget;
    while (!got && sim.now() < deadline) {
      if (sim.loop().empty()) break;
      sim.loop().step();
    }
    EXPECT_TRUE(got) << "no reply within budget";
    return reply;
  }

  sim::Simulation sim{12345};
  sim::Host& h0 = sim.add_host("replica0");
  sim::Host& h1 = sim.add_host("replica1");
  sim::Host& hc = sim.add_host("client");
  sim::FaultInjector inject{sim};
  comp::HostLibrary lib0, lib1;
  FtmRuntime rt0{h0, lib0};
  FtmRuntime rt1{h1, lib1};
  Client client{hc, {h0.id(), h1.id()}};
};

}  // namespace rcs::ftm::testing
