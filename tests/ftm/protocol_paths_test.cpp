// Targeted tests for the protocol kernel's hairier paths: message
// reordering (stash), abort-overtakes-forward, deferred exec requests,
// duplicate suppression of in-flight requests, peer-down completion of
// parked contexts, and quiescence interaction with forwarded traffic.
#include <gtest/gtest.h>

#include "duplex_fixture.hpp"

namespace rcs::ftm::testing {
namespace {

using Fixture = DuplexFixture;

TEST_F(Fixture, DuplicateWhileInFlightIsSuppressed) {
  deploy(FtmConfig::pbr());
  // First copy starts processing (compute takes 5ms); a duplicate arriving
  // mid-flight must neither restart the pipeline nor produce two replies.
  Value payload = Value::map();
  payload.set("client", static_cast<std::int64_t>(hc.id().value()))
      .set("id", 77)
      .set("request", kv_incr("ctr"));
  hc.send(h0.id(), msg::kRequest, payload);
  sim.run_for(3 * sim::kMillisecond);
  ASSERT_EQ(rt0.kernel().in_flight(), 1u);
  hc.send(h0.id(), msg::kRequest, payload);  // duplicate, still in flight
  sim.run_for(2 * sim::kSecond);

  const Value got = roundtrip(kv_get("ctr"));
  EXPECT_EQ(got.at("result").at("value").as_int(), 1) << "executed once";
  EXPECT_EQ(rt0.kernel().counters().replies, 2u)
      << "one live reply + one final reply for the probe";
}

TEST_F(Fixture, AbortOvertakingForwardIsRemembered) {
  deploy(FtmConfig::lfr());
  // Simulate the reordered-wire case directly: the abort for a key arrives
  // at the follower BEFORE the forwarded request.
  Value abort = Value::map();
  abort.set("phase", "ctrl").set("kind", "abort")
      .set("data", Value::map().set("key", "c9:5"));
  h0.send(h1.id(), msg::kReplica, std::move(abort));
  sim.run_for(10 * sim::kMillisecond);

  Value forward = Value::map();
  forward.set("phase", "before").set("kind", "request").set("key", "c9:5");
  forward.set("data", Value::map()
                          .set("key", "c9:5")
                          .set("client", 9)
                          .set("id", 5)
                          .set("request", kv_incr("ctr")));
  h0.send(h1.id(), msg::kReplica, std::move(forward));
  sim.run_for(2 * sim::kSecond);

  EXPECT_EQ(rt1.kernel().in_flight(), 0u) << "aborted forward never started";
  // The follower state must not contain the aborted increment.
  const Value state = rt1.composite().invoke("server", "state", "get", {});
  EXPECT_FALSE(state.at("entries").has("ctr"));
}

TEST_F(Fixture, LateNotifyAfterAbortedForwardDoesNotCrash) {
  deploy(FtmConfig::lfr());
  Value notify = Value::map();
  notify.set("phase", "after").set("kind", "notify").set("key", "c9:9");
  notify.set("data", Value::map().set("key", "c9:9").set("digest", 123));
  h0.send(h1.id(), msg::kReplica, std::move(notify));
  EXPECT_NO_THROW(sim.run_for(sim::kSecond));
  EXPECT_EQ(rt1.kernel().in_flight(), 0u);
}

TEST_F(Fixture, FailedLeaderRequestAbortsFollowerContext) {
  // LFR⊕TR + nondeterministic app: every leader execution fails (no
  // majority); the follower's forwarded contexts must be cleaned up.
  deploy(FtmConfig::lfr_tr(), app::kSensor);
  Value reply;
  client.send(Value::map().set("op", "read").set("target", 40.0),
              [&](const Value& r) { reply = r; });
  sim.run_for(5 * sim::kSecond);
  ASSERT_TRUE(reply.is_map());
  EXPECT_TRUE(reply.has("error"));
  EXPECT_EQ(rt1.kernel().in_flight(), 0u)
      << "follower context for the failed request leaked";
}

TEST_F(Fixture, QuiesceDrainsDespiteFailingRequests) {
  deploy(FtmConfig::lfr_tr());
  h0.faults().permanent = true;  // every request fails with no-majority
  for (int i = 0; i < 3; ++i) {
    const Value reply = roundtrip(kv_incr("k"), 20 * sim::kSecond);
    EXPECT_TRUE(reply.has("error"));
  }
  bool drained0 = false, drained1 = false;
  rt0.quiesce([&] { drained0 = true; });
  rt1.quiesce([&] { drained1 = true; });
  sim.run_for(2 * sim::kSecond);
  EXPECT_TRUE(drained0);
  EXPECT_TRUE(drained1) << "orphaned forwarded contexts block quiescence";
  rt0.resume();
  rt1.resume();
}

TEST_F(Fixture, ExecRequestRacingLocalExecutionIsDeferred) {
  deploy(FtmConfig::a_lfr());
  h0.faults().permanent = true;
  // Three requests: each forces leader assert-failure -> exec_req to the
  // follower while the follower may still be computing the same request.
  for (int i = 1; i <= 3; ++i) {
    const Value reply = roundtrip(kv_incr("ctr"), 20 * sim::kSecond);
    ASSERT_FALSE(reply.has("error")) << reply.to_string();
    EXPECT_EQ(reply.at("result").at("value").as_int(), i)
        << "deferred exec answered from the single local execution";
  }
  EXPECT_EQ(rt1.kernel().in_flight(), 0u);
}

TEST_F(Fixture, PeerDownCompletesParkedCheckpointWait) {
  deploy(FtmConfig::pbr());
  // Kill the backup while a request is between checkpoint and ack.
  Value reply;
  client.send(kv_incr("ctr"), [&](const Value& r) { reply = r; });
  sim.run_for(6 * sim::kMillisecond);  // compute done, checkpoint in flight
  h1.crash();
  sim.run_for(2 * sim::kSecond);
  ASSERT_TRUE(reply.is_map()) << "request parked forever on a dead peer";
  EXPECT_FALSE(reply.has("error"));
  EXPECT_EQ(rt0.kernel().role(), Role::kAlone);
}

TEST_F(Fixture, StashedNotifyIsConsumedOncePerKey) {
  deploy(FtmConfig::lfr());
  for (int i = 0; i < 5; ++i) {
    const Value reply = roundtrip(kv_incr("ctr"));
    ASSERT_FALSE(reply.has("error"));
  }
  // The leader replies to the client in parallel with the follower's
  // notification; give the follower's last context time to consume it.
  sim.run_for(100 * sim::kMillisecond);
  EXPECT_EQ(rt1.kernel().counters().forwarded, 5u);
  EXPECT_EQ(rt1.kernel().in_flight(), 0u);
  EXPECT_EQ(rt1.kernel().counters().divergences, 0u);
}

TEST_F(Fixture, PromotionMidPipelineServesBufferedClient) {
  deploy(FtmConfig::pbr());
  // Client request arrives at the backup while the primary is alive: it is
  // ignored; after promotion the SAME id must be served.
  Value payload = Value::map();
  payload.set("client", static_cast<std::int64_t>(hc.id().value()))
      .set("id", 500)
      .set("request", kv_incr("ctr"));
  hc.send(h1.id(), msg::kRequest, payload);
  sim.run_for(100 * sim::kMillisecond);
  EXPECT_EQ(rt1.kernel().counters().replies, 0u);

  h0.crash();
  sim.run_for(sim::kSecond);  // failure detector promotes the backup
  ASSERT_EQ(rt1.kernel().role(), Role::kAlone);
  hc.send(h1.id(), msg::kRequest, payload);
  sim.run_for(sim::kSecond);
  EXPECT_EQ(rt1.kernel().counters().replies, 1u);
}

TEST_F(Fixture, PbrSurvivesLossyReplicaLink) {
  // A dropped checkpoint or ack must not wedge the pipeline: the waiting
  // phase retransmits until the peer answers (bounded by the failure
  // detector). 10% message loss on the replica link, sequential workload.
  deploy(FtmConfig::pbr());
  sim.network().link(h0.id(), h1.id()).drop_rate = 0.10;
  for (int i = 1; i <= 20; ++i) {
    const Value reply = roundtrip(kv_incr("ctr"), 30 * sim::kSecond);
    ASSERT_FALSE(reply.has("error")) << "request " << i;
    ASSERT_EQ(reply.at("result").at("value").as_int(), i)
        << "retransmission executed a checkpointed request twice";
  }
  EXPECT_EQ(rt0.kernel().in_flight(), 0u);
}

TEST_F(Fixture, AssertRecoverySurvivesLossyReplicaLink) {
  // exec_req / exec_result can be lost too; the assert-recovery path must
  // retransmit rather than park forever.
  deploy(FtmConfig::a_pbr());
  sim.network().link(h0.id(), h1.id()).drop_rate = 0.10;
  h0.faults().permanent = true;
  for (int i = 1; i <= 10; ++i) {
    const Value reply = roundtrip(kv_incr("ctr"), 60 * sim::kSecond);
    ASSERT_FALSE(reply.has("error")) << "request " << i;
    ASSERT_EQ(reply.at("result").at("value").as_int(), i);
  }
}

TEST_F(Fixture, LfrFollowerGivesUpOnLostNotification) {
  // The LFR notification is fire-and-forget; when it is lost the follower
  // must not hold its forwarded context (and quiescence) hostage.
  deploy(FtmConfig::lfr());
  sim.network().link(h0.id(), h1.id()).drop_rate = 0.25;
  for (int i = 1; i <= 15; ++i) {
    const Value reply = roundtrip(kv_incr("ctr"), 60 * sim::kSecond);
    ASSERT_FALSE(reply.has("error")) << "request " << i;
  }
  sim.network().link(h0.id(), h1.id()).drop_rate = 0.0;
  sim.run_for(5 * sim::kSecond);
  EXPECT_EQ(rt1.kernel().in_flight(), 0u)
      << "follower contexts leaked on lost notifications";
}

TEST_F(Fixture, CountersExposedThroughControlStats) {
  deploy(FtmConfig::pbr());
  (void)roundtrip(kv_incr("ctr"));
  const Value stats = rt0.composite().invoke("protocol", "control", "stats", {});
  EXPECT_EQ(stats.at("replies").as_int(), 1);
  EXPECT_EQ(stats.at("checkpoints_sent").as_int(), 1);
  EXPECT_EQ(stats.at("promotions").as_int(), 0);
}

}  // namespace
}  // namespace rcs::ftm::testing
