#include "rcs/ftm/script_builder.hpp"

#include <gtest/gtest.h>

#include "rcs/app/apps.hpp"
#include "rcs/common/error.hpp"
#include "rcs/ftm/registration.hpp"
#include "rcs/script/parser.hpp"

namespace rcs::ftm {
namespace {

struct BuilderFixture : ::testing::Test {
  BuilderFixture() {
    register_components();
    app::register_components();
  }
  const comp::ComponentRegistry& registry = comp::ComponentRegistry::instance();
  ScriptBuilder builder{registry};
  AppSpec kv = app::spec_for(app::kKvStore);
  AppSpec stateless = app::spec_for(app::kTransformer);
};

TEST_F(BuilderFixture, DeploymentScriptParses) {
  for (const auto& config : FtmConfig::standard_set()) {
    const std::string source = builder.deployment_script(config, kv);
    EXPECT_NO_THROW((void)script::parse(source)) << source;
  }
}

TEST_F(BuilderFixture, DeploymentScriptContainsAllSevenComponents) {
  const std::string source = builder.deployment_script(FtmConfig::pbr(), kv);
  for (const char* name :
       {"\"protocol\"", "\"replyLog\"", "\"detector\"", "\"server\"",
        "\"syncBefore\"", "\"proceed\"", "\"syncAfter\""}) {
    EXPECT_NE(source.find(name), std::string::npos) << "missing " << name;
  }
  EXPECT_NE(source.find(app::kKvStore), std::string::npos);
}

TEST_F(BuilderFixture, StateWireOnlyWhenAppProvidesState) {
  const std::string with_state =
      builder.deployment_script(FtmConfig::pbr(), kv);
  EXPECT_NE(with_state.find("\"state\""), std::string::npos);

  const std::string without_state =
      builder.deployment_script(FtmConfig::lfr(), stateless);
  EXPECT_EQ(without_state.find("\"state\""), std::string::npos);
}

TEST_F(BuilderFixture, AssertionWireOnlyForAssertFtms) {
  const std::string plain = builder.deployment_script(FtmConfig::pbr(), kv);
  EXPECT_EQ(plain.find("\"assertion\""), std::string::npos);
  const std::string asserting =
      builder.deployment_script(FtmConfig::a_pbr(), kv);
  EXPECT_NE(asserting.find("\"assertion\""), std::string::npos);
}

TEST_F(BuilderFixture, TransitionScriptTouchesOnlyChangedSlots) {
  const std::string source = builder.transition_script(
      FtmConfig::lfr(), FtmConfig::lfr_tr(), kv);
  // LFR -> LFR⊕TR replaces only proceed (Fig. 9a).
  EXPECT_NE(source.find("remove(\"proceed\")"), std::string::npos);
  EXPECT_EQ(source.find("remove(\"syncBefore\")"), std::string::npos);
  EXPECT_EQ(source.find("remove(\"syncAfter\")"), std::string::npos);
  EXPECT_NO_THROW((void)script::parse(source));
}

TEST_F(BuilderFixture, TransitionScriptGuardsSourceConfiguration) {
  const std::string source =
      builder.transition_script(FtmConfig::pbr(), FtmConfig::lfr(), kv);
  EXPECT_NE(source.find("require property(\"protocol\", \"ftm\") == \"PBR\""),
            std::string::npos);
  EXPECT_NE(source.find("set(\"protocol\", \"ftm\", \"LFR\")"),
            std::string::npos);
}

TEST_F(BuilderFixture, ChangedSlotsMatchDiff) {
  EXPECT_EQ(ScriptBuilder::changed_slots(FtmConfig::pbr(), FtmConfig::lfr()),
            (std::vector<std::string>{"syncBefore", "syncAfter"}));
  EXPECT_EQ(ScriptBuilder::changed_slots(FtmConfig::pbr(), FtmConfig::a_pbr()),
            (std::vector<std::string>{"syncAfter"}));
  EXPECT_EQ(
      ScriptBuilder::changed_slots(FtmConfig::pbr(), FtmConfig::lfr_tr()).size(),
      3u);
}

TEST_F(BuilderFixture, TransitionNewTypesAreTheTargetBricks) {
  const auto types =
      ScriptBuilder::transition_new_types(FtmConfig::pbr(), FtmConfig::lfr());
  ASSERT_EQ(types.size(), 2u);
  EXPECT_EQ(types[0], brick::kSyncBeforeLfr);
  EXPECT_EQ(types[1], brick::kSyncAfterLfr);
}

TEST_F(BuilderFixture, AllTable3TransitionsParse) {
  for (const auto& from : FtmConfig::table3_set()) {
    for (const auto& to : FtmConfig::table3_set()) {
      if (from == to) continue;
      const std::string source = builder.transition_script(from, to, kv);
      EXPECT_NO_THROW((void)script::parse(source))
          << from.name << " -> " << to.name << "\n" << source;
    }
  }
}

TEST_F(BuilderFixture, IdentityTransitionOnlyUpdatesLabel) {
  const std::string source =
      builder.transition_script(FtmConfig::pbr(), FtmConfig::pbr(), kv);
  EXPECT_EQ(source.find("remove("), std::string::npos);
  EXPECT_NE(source.find("set(\"protocol\", \"ftm\", \"PBR\")"),
            std::string::npos);
}

}  // namespace
}  // namespace rcs::ftm
