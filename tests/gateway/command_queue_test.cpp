// The command-queue boundary: external threads hand work to the simulation
// without ever touching it. These tests pin the contract the gateway rests
// on: tickets are unique, drains move everything exactly once, completions
// wake exactly the right waiter, and — the load-bearing property — commands
// produced concurrently from many real threads are injected only at quantum
// boundaries, so the deterministic core observes them at deterministic sim
// instants. The concurrent cases double as the TSan surface for the
// subsystem (CI runs this binary under -fsanitize=thread).
#include "rcs/gateway/command_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "rcs/ftm/config.hpp"
#include "rcs/gateway/bridge.hpp"

namespace rcs::gateway {
namespace {

TEST(CommandQueue, TicketsAreUniqueAndDrainMovesEverything) {
  CommandQueue queue;
  std::vector<std::uint64_t> tickets;
  tickets.push_back(queue.push_request(Value::map().set("op", "get")));
  tickets.push_back(queue.push_adapt("LFR"));
  tickets.push_back(queue.push_request(Value::map().set("op", "put")));
  EXPECT_EQ(queue.depth(), 3u);
  EXPECT_EQ(queue.enqueued_total(), 3u);

  std::set<std::uint64_t> unique(tickets.begin(), tickets.end());
  EXPECT_EQ(unique.size(), tickets.size());

  std::vector<Command> drained;
  queue.drain(drained);
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_EQ(queue.depth(), 0u);
  EXPECT_EQ(drained[0].kind, Command::Kind::kRequest);
  EXPECT_EQ(drained[1].kind, Command::Kind::kAdapt);
  EXPECT_EQ(drained[1].target, "LFR");
  EXPECT_EQ(drained[0].ticket, tickets[0]);
  EXPECT_EQ(drained[2].ticket, tickets[2]);

  // A second drain is empty: commands move exactly once.
  std::vector<Command> again;
  queue.drain(again);
  EXPECT_TRUE(again.empty());
}

TEST(CommandQueue, CapacityBoundsBacklogAndCountsRejections) {
  CommandQueue queue;
  queue.set_capacity(2);
  EXPECT_EQ(queue.capacity(), 2u);
  const auto first = queue.push_request(Value::map().set("op", "get"));
  const auto second = queue.push_adapt("LFR");
  EXPECT_NE(first, 0u);
  EXPECT_NE(second, 0u);

  // Full: both kinds are rejected with the reserved ticket 0 and counted;
  // nothing already queued is disturbed.
  EXPECT_EQ(queue.push_request(Value::map().set("op", "get")), 0u);
  EXPECT_EQ(queue.push_adapt("PBR"), 0u);
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_EQ(queue.enqueued_total(), 2u);
  EXPECT_EQ(queue.rejected_total(), 2u);

  // Draining frees capacity; tickets keep advancing past the rejections.
  std::vector<Command> drained;
  queue.drain(drained);
  ASSERT_EQ(drained.size(), 2u);
  const auto third = queue.push_request(Value::map().set("op", "get"));
  EXPECT_NE(third, 0u);
  EXPECT_NE(third, first);
  EXPECT_NE(third, second);

  // Capacity 0 lifts the bound without resetting the rejection count.
  queue.set_capacity(0);
  for (int i = 0; i < 100; ++i) EXPECT_NE(queue.push_adapt("LFR"), 0u);
  EXPECT_EQ(queue.rejected_total(), 2u);
}

TEST(CompletionBoard, PostThenWaitReturnsImmediately) {
  CompletionBoard board;
  board.post(7, Value::map().set("result", 42));
  const auto reply = board.wait(7, std::chrono::milliseconds(0));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(reply->at("result").as_int(), 42);
  EXPECT_EQ(board.posted_total(), 1u);
}

TEST(CompletionBoard, WaitTimesOutWithoutAPost) {
  CompletionBoard board;
  const auto reply = board.wait(99, std::chrono::milliseconds(10));
  EXPECT_FALSE(reply.has_value());
}

TEST(CompletionBoard, CloseReleasesBlockedWaiters) {
  CompletionBoard board;
  std::atomic<bool> released{false};
  std::thread waiter([&] {
    const auto reply = board.wait(5, std::chrono::seconds(30));
    EXPECT_FALSE(reply.has_value());
    released.store(true);
  });
  board.close();
  waiter.join();
  EXPECT_TRUE(released.load());
  // Posts after close are dropped, not resurrected.
  board.post(5, Value::map().set("result", 1));
  EXPECT_FALSE(board.wait(5, std::chrono::milliseconds(0)).has_value());
}

TEST(CompletionBoard, ConcurrentWaitersEachGetTheirOwnReply) {
  CompletionBoard board;
  constexpr int kWaiters = 8;
  std::vector<std::thread> waiters;
  std::vector<std::int64_t> got(kWaiters, -1);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&board, &got, i] {
      const auto reply =
          board.wait(static_cast<std::uint64_t>(i), std::chrono::seconds(30));
      if (reply) got[static_cast<std::size_t>(i)] = reply->at("result").as_int();
    });
  }
  for (int i = kWaiters - 1; i >= 0; --i) {
    board.post(static_cast<std::uint64_t>(i), Value::map().set("result", i));
  }
  for (auto& t : waiters) t.join();
  for (int i = 0; i < kWaiters; ++i) {
    EXPECT_EQ(got[static_cast<std::size_t>(i)], i) << "waiter " << i;
  }
}

/// One ResilientSystem + bridge, the shape gateway_runner builds.
struct BridgeFixture {
  core::ResilientSystem system;
  SimBridge bridge;

  explicit BridgeFixture(BridgeOptions options = {.speed = 0.0})
      : system(core::SystemOptions{}), bridge(system, options) {
    system.deploy_and_wait(ftm::FtmConfig::pbr());
  }
};

TEST(SimBridge, CommandsLandOnlyAtQuantumBoundaries) {
  BridgeFixture fx;
  auto& sim = fx.system.sim();
  const sim::Time start = sim.now();
  const sim::Duration quantum = BridgeOptions{}.quantum;

  // A command pushed mid-quantum is invisible until the next step.
  const auto ticket = fx.bridge.submit_request(
      Value::map().set("op", "put").set("key", "k").set("value", 1));
  EXPECT_EQ(fx.bridge.injected_total(), 0u);

  // Exactly one step: the command is injected at `start` (the boundary) and
  // virtual time advances exactly one quantum — a deterministic instant
  // independent of when the producer thread ran.
  fx.bridge.step_quantum();
  EXPECT_EQ(fx.bridge.injected_total(), 1u);
  EXPECT_EQ(sim.now(), start + quantum);

  // The reply arrives within a few quanta of simulated protocol time.
  std::optional<Value> reply;
  for (int i = 0; i < 100 && !reply; ++i) {
    fx.bridge.step_quantum();
    reply = fx.bridge.completions().wait(ticket, std::chrono::milliseconds(0));
  }
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->has("result"));
  // However many quanta that took, the clock sits exactly on a boundary.
  EXPECT_EQ((sim.now() - start) % quantum, 0);
}

TEST(SimBridge, ConcurrentProducersAllCompleteAndSerialize) {
  BridgeFixture fx;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;

  // Real producer threads racing against the stepping sim thread: the exact
  // topology TSan must find clean.
  std::vector<std::uint64_t> tickets(kThreads * kPerThread);
  std::vector<std::thread> producers;
  std::atomic<bool> stepping{true};
  std::thread sim_thread([&] {
    while (stepping.load(std::memory_order_acquire)) fx.bridge.step_quantum();
  });
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tickets[static_cast<std::size_t>(t * kPerThread + i)] =
            fx.bridge.submit_request(
                Value::map().set("op", "incr").set("key", "ctr"));
      }
    });
  }
  for (auto& producer : producers) producer.join();

  // Every ticket completes (the sim thread keeps stepping underneath).
  std::vector<std::int64_t> seen_values;
  for (const auto ticket : tickets) {
    const auto reply = fx.bridge.completions().wait(ticket,
                                                    std::chrono::seconds(60));
    ASSERT_TRUE(reply.has_value()) << "ticket " << ticket;
    ASSERT_TRUE(reply->has("result")) << reply->to_string();
    seen_values.push_back(reply->at("result").at("value").as_int());
  }
  stepping.store(false, std::memory_order_release);
  sim_thread.join();

  // The increments were serialized through the sim: the multiset of counter
  // values is exactly 1..N, every increment applied exactly once.
  std::sort(seen_values.begin(), seen_values.end());
  for (int i = 0; i < kThreads * kPerThread; ++i) {
    EXPECT_EQ(seen_values[static_cast<std::size_t>(i)], i + 1);
  }
  EXPECT_EQ(fx.bridge.injected_total(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST(SimBridge, AdaptCommandRunsATransition) {
  BridgeFixture fx;
  const auto ticket = fx.bridge.submit_adapt("LFR");
  std::optional<Value> reply;
  for (int i = 0; i < 2000 && !reply; ++i) {
    fx.bridge.step_quantum();
    reply = fx.bridge.completions().wait(ticket, std::chrono::milliseconds(0));
  }
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->at("ok").as_bool()) << reply->to_string();
  EXPECT_EQ(reply->at("to").as_string(), "LFR");
  EXPECT_EQ(fx.system.engine().current().name, "LFR");
}

TEST(SimBridge, UnknownFtmYieldsAnErrorCompletion) {
  BridgeFixture fx;
  const auto ticket = fx.bridge.submit_adapt("NOPE");
  fx.bridge.step_quantum();
  const auto reply =
      fx.bridge.completions().wait(ticket, std::chrono::milliseconds(0));
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(reply->has("error"));
}

TEST(SimBridge, QueueOverflowRejectsAndIsObservable) {
  BridgeOptions options{.speed = 0.0};
  options.queue_capacity = 1;
  BridgeFixture fx(options);

  const auto ticket = fx.bridge.submit_request(
      Value::map().set("op", "get").set("key", "k"));
  EXPECT_NE(ticket, 0u);
  // Second push overflows the one-slot queue: rejected, not queued.
  EXPECT_EQ(fx.bridge.submit_request(
                Value::map().set("op", "get").set("key", "k")),
            0u);
  EXPECT_EQ(fx.bridge.commands().rejected_total(), 1u);

  // A drain frees the slot again.
  fx.bridge.step_quantum();
  EXPECT_NE(fx.bridge.submit_adapt("LFR"), 0u);

  // run(until already reached) publishes a final frame: the rejection rides
  // the status JSON and folds into the gateway.queue.rejected counter.
  (void)fx.bridge.run(fx.system.sim().now());
  EXPECT_NE(fx.bridge.latest_status().find("\"rejected\":1"),
            std::string::npos)
      << "status: " << fx.bridge.latest_status();
  EXPECT_EQ(
      fx.system.sim().metrics().counter("gateway.queue.rejected").value(),
      1u);
}

TEST(SimBridge, RunStopsOnWatchedFlagAndClosesBoard) {
  BridgeFixture fx;
  std::atomic<bool> stop{false};
  fx.bridge.watch_stop_flag(&stop);  // registered before run(), like the tool
  std::thread sim_thread([&] { fx.bridge.run(); });
  const auto ticket = fx.bridge.submit_request(
      Value::map().set("op", "get").set("key", "missing"));
  const auto reply =
      fx.bridge.completions().wait(ticket, std::chrono::seconds(60));
  ASSERT_TRUE(reply.has_value());
  stop.store(true, std::memory_order_release);
  sim_thread.join();
  // Board is closed after run(): new waits return promptly with nothing.
  EXPECT_FALSE(
      fx.bridge.completions().wait(12345, std::chrono::seconds(30)).has_value());
}

}  // namespace
}  // namespace rcs::gateway
