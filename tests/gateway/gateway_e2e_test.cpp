// End-to-end over a real loopback socket: the shape the CI smoke job curls,
// exercised in-process. A ResilientSystem runs PBR over two replicas, the
// bridge paces it unthrottled on a background thread, the server listens on
// an ephemeral port — and a plain TCP client performs the health check, a KV
// round-trip served by the replicated FTM group, and a WebSocket upgrade
// that receives a status frame. Also the second half of the TSan surface:
// real sockets, real worker threads, the sim thread, all at once.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>

#include "rcs/ftm/config.hpp"
#include "rcs/gateway/bridge.hpp"
#include "rcs/gateway/server.hpp"

namespace rcs::gateway {
namespace {

/// Blocking loopback TCP client, just enough for the tests.
class TestClient {
 public:
  explicit TestClient(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ =
        ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] bool connected() const { return connected_; }

  void send_all(const std::string& data) const {
    std::size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, 0);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  /// One HTTP response: headers + Content-Length body.
  std::string read_response() {
    while (buffer_.find("\r\n\r\n") == std::string::npos) {
      if (!fill()) return {};
    }
    const std::size_t header_end = buffer_.find("\r\n\r\n") + 4;
    std::size_t body_len = 0;
    const auto cl = buffer_.find("Content-Length: ");
    if (cl != std::string::npos && cl < header_end) {
      body_len = static_cast<std::size_t>(
          std::strtoul(buffer_.c_str() + cl + 16, nullptr, 10));
    }
    while (buffer_.size() < header_end + body_len) {
      if (!fill()) return {};
    }
    std::string response = buffer_.substr(0, header_end + body_len);
    buffer_.erase(0, header_end + body_len);
    return response;
  }

  /// Read until the handshake's blank line only (no Content-Length on 101s).
  std::string read_headers() {
    while (buffer_.find("\r\n\r\n") == std::string::npos) {
      if (!fill()) return {};
    }
    const std::size_t end = buffer_.find("\r\n\r\n") + 4;
    std::string headers = buffer_.substr(0, end);
    buffer_.erase(0, end);
    return headers;
  }

  /// One server WebSocket frame (unmasked text, possibly 126-length).
  std::string read_ws_frame() {
    while (true) {
      if (buffer_.size() >= 2) {
        const auto b1 = static_cast<unsigned char>(buffer_[1]);
        std::size_t header = 2, len = b1 & 0x7f;
        if (len == 126 && buffer_.size() >= 4) {
          len = (static_cast<unsigned char>(buffer_[2]) << 8) |
                static_cast<unsigned char>(buffer_[3]);
          header = 4;
        } else if (len == 127 && buffer_.size() >= 10) {
          len = 0;
          for (int i = 2; i < 10; ++i) {
            len = (len << 8) | static_cast<unsigned char>(buffer_[i]);
          }
          header = 10;
        }
        if ((len < 126 || header > 2) && buffer_.size() >= header + len) {
          std::string payload = buffer_.substr(header, len);
          buffer_.erase(0, header + len);
          return payload;
        }
      }
      if (!fill()) return {};
    }
  }

 private:
  bool fill() {
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n <= 0) return false;
    buffer_.append(chunk, static_cast<std::size_t>(n));
    return true;
  }

  int fd_{-1};
  bool connected_{false};
  std::string buffer_;
};

class GatewayE2E : public ::testing::Test {
 protected:
  void SetUp() override {
    system_ = std::make_unique<core::ResilientSystem>(core::SystemOptions{});
    system_->deploy_and_wait(ftm::FtmConfig::pbr());
    bridge_ = std::make_unique<SimBridge>(*system_,
                                          BridgeOptions{.speed = 0.0});
    ServerOptions options;
    options.port = 0;  // ephemeral
    options.workers = 2;
    server_ = std::make_unique<GatewayServer>(*bridge_, options);
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
    bridge_->set_publisher(
        [this](const std::string& frame) { server_->publish(frame); });
    sim_thread_ = std::thread([this] { bridge_->run(); });
  }

  void TearDown() override {
    bridge_->request_stop();
    if (sim_thread_.joinable()) sim_thread_.join();
    server_->stop();
  }

  std::unique_ptr<core::ResilientSystem> system_;
  std::unique_ptr<SimBridge> bridge_;
  std::unique_ptr<GatewayServer> server_;
  std::thread sim_thread_;
};

TEST_F(GatewayE2E, HealthzAnswersOverRealSocket) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.send_all("GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n");
  const std::string response = client.read_response();
  EXPECT_NE(response.find("200 OK"), std::string::npos);
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(response.find("sim_now_us"), std::string::npos);
}

TEST_F(GatewayE2E, KvRoundTripThroughTheFtmGroup) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // put over the same keep-alive connection, then get it back.
  client.send_all(
      "POST /kv/e2e HTTP/1.1\r\nHost: t\r\nContent-Length: 7\r\n\r\npayload");
  const std::string put = client.read_response();
  EXPECT_NE(put.find("200 OK"), std::string::npos) << put;
  EXPECT_NE(put.find("\"ok\":true"), std::string::npos) << put;

  client.send_all("GET /kv/e2e HTTP/1.1\r\nHost: t\r\n\r\n");
  const std::string get = client.read_response();
  EXPECT_NE(get.find("200 OK"), std::string::npos) << get;
  EXPECT_NE(get.find("\"value\":\"payload\""), std::string::npos) << get;
}

TEST_F(GatewayE2E, MissingKeyAndUnknownRouteShapes) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.send_all("GET /kv/never-written HTTP/1.1\r\nHost: t\r\n\r\n");
  const std::string get = client.read_response();
  EXPECT_NE(get.find("\"found\":false"), std::string::npos) << get;

  client.send_all("GET /no-such-route HTTP/1.1\r\nHost: t\r\n\r\n");
  EXPECT_NE(client.read_response().find("404"), std::string::npos);
}

TEST_F(GatewayE2E, WebSocketUpgradeStreamsStatusFrames) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  client.send_all(
      "GET /ws HTTP/1.1\r\nHost: t\r\nUpgrade: websocket\r\n"
      "Connection: Upgrade\r\nSec-WebSocket-Key: dGhlIHNhbXBsZSBub25jZQ==\r\n"
      "Sec-WebSocket-Version: 13\r\n\r\n");
  const std::string handshake = client.read_headers();
  EXPECT_NE(handshake.find("101 Switching Protocols"), std::string::npos);
  EXPECT_NE(handshake.find("s3pPLMBiTxaQ9kYGzzhZRbK+xOo="), std::string::npos);

  // Frames keep flowing (greeting + periodic snapshots); find a status one.
  bool saw_status = false;
  for (int i = 0; i < 10 && !saw_status; ++i) {
    const std::string frame = client.read_ws_frame();
    ASSERT_FALSE(frame.empty());
    saw_status = frame.find("\"type\":\"status\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_status);
}

TEST_F(GatewayE2E, GroupsReportTheActiveFtm) {
  TestClient client(server_->port());
  ASSERT_TRUE(client.connected());
  // /groups serves the snapshot cache; wait for the first publish.
  std::string body;
  for (int i = 0; i < 200; ++i) {
    TestClient probe(server_->port());
    ASSERT_TRUE(probe.connected());
    probe.send_all("GET /groups HTTP/1.1\r\nHost: t\r\n\r\n");
    body = probe.read_response();
    if (body.find("\"ftm\":\"PBR\"") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(body.find("\"ftm\":\"PBR\""), std::string::npos) << body;
  EXPECT_NE(body.find("replica0"), std::string::npos);
}

}  // namespace
}  // namespace rcs::gateway
