// The minimal HTTP/1.1 + WebSocket plumbing under the gateway. The HTTP
// cases pin the incremental-parser contract (kIncomplete until a full
// request sits in the buffer, consumed counts exact, headers lowercased,
// paths decoded); the WebSocket cases pin the RFC 6455 handshake against the
// spec's own test vector and round-trip masked client frames through the
// parser.
#include "rcs/gateway/http.hpp"

#include <gtest/gtest.h>

#include <string>

namespace rcs::gateway {
namespace {

TEST(HttpParser, SimpleGet) {
  HttpRequest request;
  std::size_t consumed = 0;
  const std::string raw = "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n";
  ASSERT_EQ(parse_http_request(raw, request, consumed), ParseStatus::kOk);
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.path, "/healthz");
  EXPECT_TRUE(request.body.empty());
  EXPECT_EQ(request.header("host"), "x");  // names lowercased
}

TEST(HttpParser, PostWithBodyAndExactConsumed) {
  HttpRequest request;
  std::size_t consumed = 0;
  const std::string raw =
      "POST /kv/a HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET /next";
  ASSERT_EQ(parse_http_request(raw, request, consumed), ParseStatus::kOk);
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "hello");
  // Pipelined bytes after the body are not consumed.
  EXPECT_EQ(raw.substr(consumed), "GET /next");
}

TEST(HttpParser, IncompleteUntilHeadersThenBodyArrive) {
  HttpRequest request;
  std::size_t consumed = 0;
  EXPECT_EQ(parse_http_request("POST /x HTTP/1.1\r\nContent-Le", request,
                               consumed),
            ParseStatus::kIncomplete);
  EXPECT_EQ(parse_http_request("POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nab",
                               request, consumed),
            ParseStatus::kIncomplete);
  EXPECT_EQ(parse_http_request("POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd",
                               request, consumed),
            ParseStatus::kOk);
  EXPECT_EQ(request.body, "abcd");
}

TEST(HttpParser, QuerySplitAndPercentDecoding) {
  HttpRequest request;
  std::size_t consumed = 0;
  const std::string raw = "GET /kv/a%20b?watch=1&x=2 HTTP/1.1\r\n\r\n";
  ASSERT_EQ(parse_http_request(raw, request, consumed), ParseStatus::kOk);
  EXPECT_EQ(request.path, "/kv/a b");
  EXPECT_EQ(request.query, "watch=1&x=2");
}

TEST(HttpParser, GarbageRequestLineIsBad) {
  HttpRequest request;
  std::size_t consumed = 0;
  EXPECT_EQ(parse_http_request("not http at all\r\n\r\n", request, consumed),
            ParseStatus::kBad);
}

TEST(HttpParser, OversizedBodyIsBad) {
  HttpRequest request;
  std::size_t consumed = 0;
  const std::string raw =
      "POST /x HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
  EXPECT_EQ(parse_http_request(raw, request, consumed), ParseStatus::kBad);
}

TEST(HttpResponse, StatusLineHeadersAndLength) {
  const std::string response = http_response(200, "application/json", "{}");
  EXPECT_EQ(response.rfind("HTTP/1.1 200 OK\r\n", 0), 0u);
  EXPECT_NE(response.find("Content-Length: 2\r\n"), std::string::npos);
  EXPECT_NE(response.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_EQ(response.substr(response.size() - 6), "\r\n\r\n{}");
}

TEST(Json, EscapesStringsAndRendersValues) {
  Value value = Value::map()
                    .set("s", "a\"b\\c\n")
                    .set("n", 42)
                    .set("d", 1.5)
                    .set("t", true)
                    .set("z", nullptr);
  const std::string json = json_of(value);
  EXPECT_NE(json.find("\"s\":\"a\\\"b\\\\c\\n\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":42"), std::string::npos);
  EXPECT_NE(json.find("\"t\":true"), std::string::npos);
  EXPECT_NE(json.find("\"z\":null"), std::string::npos);
}

TEST(WebSocket, Rfc6455HandshakeVector) {
  // The key/accept pair straight out of RFC 6455 §1.3.
  EXPECT_EQ(ws_accept_key("dGhlIHNhbXBsZSBub25jZQ=="),
            "s3pPLMBiTxaQ9kYGzzhZRbK+xOo=");
  const std::string response =
      ws_handshake_response("dGhlIHNhbXBsZSBub25jZQ==");
  EXPECT_EQ(response.rfind("HTTP/1.1 101 Switching Protocols\r\n", 0), 0u);
  EXPECT_NE(
      response.find("Sec-WebSocket-Accept: s3pPLMBiTxaQ9kYGzzhZRbK+xOo=\r\n"),
      std::string::npos);
}

/// Mask a payload into a client frame the way a browser would.
std::string client_frame(int opcode, std::string payload) {
  std::string frame;
  frame.push_back(static_cast<char>(0x80 | opcode));
  const unsigned char mask[4] = {0x12, 0x34, 0x56, 0x78};
  if (payload.size() < 126) {
    frame.push_back(static_cast<char>(0x80 | payload.size()));
  } else {
    frame.push_back(static_cast<char>(0x80 | 126));
    frame.push_back(static_cast<char>(payload.size() >> 8));
    frame.push_back(static_cast<char>(payload.size() & 0xff));
  }
  frame.append(reinterpret_cast<const char*>(mask), 4);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    frame.push_back(static_cast<char>(payload[i] ^ mask[i % 4]));
  }
  return frame;
}

TEST(WebSocket, ParsesMaskedClientFrames) {
  WsFrame frame;
  std::size_t consumed = 0;
  const std::string raw = client_frame(0x1, "hello sim");
  ASSERT_EQ(parse_ws_frame(raw, frame, consumed), ParseStatus::kOk);
  EXPECT_EQ(consumed, raw.size());
  EXPECT_EQ(frame.opcode, 0x1);
  EXPECT_TRUE(frame.fin);
  EXPECT_EQ(frame.payload, "hello sim");
}

TEST(WebSocket, ParsesExtendedLengthFrames) {
  WsFrame frame;
  std::size_t consumed = 0;
  const std::string payload(300, 'x');
  const std::string raw = client_frame(0x2, payload);
  ASSERT_EQ(parse_ws_frame(raw, frame, consumed), ParseStatus::kOk);
  EXPECT_EQ(frame.payload.size(), 300u);
}

TEST(WebSocket, UnmaskedClientFrameIsRejected) {
  // Server-style (unmasked) bytes must be kBad from a client, per RFC 6455.
  WsFrame frame;
  std::size_t consumed = 0;
  const std::string raw = ws_text_frame("nope");
  EXPECT_EQ(parse_ws_frame(raw, frame, consumed), ParseStatus::kBad);
}

TEST(WebSocket, PartialFrameIsIncomplete) {
  WsFrame frame;
  std::size_t consumed = 0;
  const std::string raw = client_frame(0x9, "ping");
  EXPECT_EQ(parse_ws_frame(raw.substr(0, 3), frame, consumed),
            ParseStatus::kIncomplete);
}

TEST(WebSocket, ServerTextFrameShape) {
  const std::string frame = ws_text_frame("abc");
  ASSERT_EQ(frame.size(), 5u);
  EXPECT_EQ(static_cast<unsigned char>(frame[0]), 0x81);  // FIN | text
  EXPECT_EQ(static_cast<unsigned char>(frame[1]), 3);     // unmasked, len 3
  EXPECT_EQ(frame.substr(2), "abc");
}

}  // namespace
}  // namespace rcs::gateway
